"""Landmark resistance sketches: O(k) per-query bounds without the walk engine.

Effective resistance is a metric on the nodes of a connected graph, so for any
landmark ``l``

.. math::

    |r(s, l) - r(l, t)| \\;\\le\\; r(s, t) \\;\\le\\; r(s, l) + r(l, t).

:class:`LandmarkSketchStore` precomputes the **exact** resistance vectors
``r(l, ·)`` for ``k`` landmark nodes and serves, per query, the tightest
triangle-inequality envelope over all landmarks.  When the envelope half-width
is at most the requested ε the midpoint is a valid ε-approximate answer — no
random walks, no SpMVs, just two ``k``-vector reads.  Queries touching a
landmark are answered exactly (the envelope collapses to a point).

Preprocessing uses one sparse LU factorisation of the grounded Laplacian
``L_g`` (the Laplacian with the row/column of a grounding node ``g`` removed):
with ``a = L_g⁻¹``,

* ``r(g, v) = a[v, v]`` — the diagonal of the inverse, obtained with chunked
  identity solves against the cached factorisation, and
* ``r(l, v) = a[l, l] - 2 a[l, v] + a[v, v]`` — one extra column solve per
  landmark.

Total cost: one ``splu`` factorisation plus ``n + k`` triangular solves, all
exact up to solver precision, so the served bounds are *valid* (the satellite
test checks them against the CG ground truth).  The grounding node is the
first landmark, so ``k`` landmarks cost ``k - 1`` column solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse.linalg as spla

from repro.exceptions import GraphStructureError
from repro.graph.graph import Graph
from repro.graph.properties import is_connected
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_node_pair, check_positive

LANDMARK_STRATEGIES = ("degree", "random")


@dataclass(frozen=True)
class SketchAnswer:
    """The triangle-inequality envelope one query gets from the sketch."""

    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def half_width(self) -> float:
        """The additive error guarantee of :attr:`midpoint`."""
        return 0.5 * (self.upper - self.lower)

    def answers(self, epsilon: float) -> bool:
        """Whether :attr:`midpoint` is a valid ε-approximate answer."""
        return self.half_width <= epsilon


@dataclass
class SketchStats:
    """Counters for one :class:`LandmarkSketchStore`."""

    lookups: int = 0
    hits: int = 0
    exact_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "exact_hits": self.exact_hits,
            "hit_rate": round(self.hit_rate, 4),
        }


class LandmarkSketchStore:
    """Exact landmark resistance vectors serving triangle-inequality bounds.

    Build one with :meth:`build` (preprocessing) or :meth:`from_arrays`
    (restoring persisted artifacts).  The store itself is immutable apart from
    its stats.

    Parameters
    ----------
    graph:
        The graph the sketch was built for (used only for validation).
    landmarks:
        Landmark node ids, in selection order.
    resistances:
        ``(k, n)`` array with ``resistances[i, v] = r(landmarks[i], v)``.
    strategy:
        How the landmarks were chosen (``"degree"`` or ``"random"``), recorded
        for artifact round-trips.
    """

    def __init__(
        self,
        graph: Graph,
        landmarks: np.ndarray,
        resistances: np.ndarray,
        *,
        strategy: str = "degree",
    ) -> None:
        landmarks = np.asarray(landmarks, dtype=np.int64)
        resistances = np.asarray(resistances, dtype=np.float64)
        if resistances.shape != (len(landmarks), graph.num_nodes):
            raise ValueError(
                f"resistances must have shape ({len(landmarks)}, {graph.num_nodes}), "
                f"got {resistances.shape}"
            )
        self.graph = graph
        self.landmarks = landmarks
        self.resistances = resistances
        self.strategy = strategy
        self.stats = SketchStats()
        self.stale = False
        self._landmark_index = {int(l): i for i, l in enumerate(landmarks)}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def select_landmarks(
        graph: Graph,
        num_landmarks: int,
        *,
        strategy: str = "degree",
        rng: RngLike = None,
    ) -> np.ndarray:
        """Pick landmark nodes: highest degree first, or uniformly at random."""
        if strategy not in LANDMARK_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {LANDMARK_STRATEGIES}, got {strategy!r}"
            )
        k = min(int(num_landmarks), graph.num_nodes)
        if k < 1:
            raise ValueError(f"num_landmarks must be >= 1, got {num_landmarks}")
        if strategy == "degree":
            # Stable sort so ties break towards the lowest node id.  Weighted
            # degrees pick heavy hubs on weighted graphs and reduce to the
            # structural degrees (same ordering) otherwise.
            return np.argsort(-graph.weighted_degrees, kind="stable")[:k].astype(np.int64)
        gen = as_generator(rng)
        return np.sort(gen.choice(graph.num_nodes, size=k, replace=False)).astype(
            np.int64
        )

    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        num_landmarks: int = 8,
        strategy: str = "degree",
        rng: RngLike = None,
        diag_chunk: int = 512,
    ) -> "LandmarkSketchStore":
        """Factor the grounded Laplacian and materialise ``r(l, ·)`` exactly."""
        if graph.num_nodes < 2:
            raise ValueError("landmark sketches need at least two nodes")
        if not is_connected(graph):
            raise GraphStructureError("landmark sketches require a connected graph")
        landmarks = cls.select_landmarks(
            graph, num_landmarks, strategy=strategy, rng=rng
        )
        n = graph.num_nodes
        ground = int(landmarks[0])
        keep = np.delete(np.arange(n), ground)
        reduced = np.full(n, -1, dtype=np.int64)
        reduced[keep] = np.arange(n - 1)

        laplacian = graph.laplacian_matrix()
        grounded = laplacian[keep][:, keep].tocsc()
        lu = spla.splu(grounded)

        # diag(L_g⁻¹) via chunked identity solves against the cached factors.
        diag = np.empty(n - 1, dtype=np.float64)
        for start in range(0, n - 1, int(diag_chunk)):
            stop = min(start + int(diag_chunk), n - 1)
            rhs = np.zeros((n - 1, stop - start), dtype=np.float64)
            rhs[np.arange(start, stop), np.arange(stop - start)] = 1.0
            block = lu.solve(rhs)
            diag[start:stop] = block[np.arange(start, stop), np.arange(stop - start)]

        resistances = np.zeros((len(landmarks), n), dtype=np.float64)
        # Ground landmark: r(g, v) = a[v, v].
        resistances[0, keep] = diag
        for i, landmark in enumerate(landmarks[1:], start=1):
            rhs = np.zeros(n - 1, dtype=np.float64)
            rhs[reduced[landmark]] = 1.0
            column = lu.solve(rhs)
            a_ll = column[reduced[landmark]]
            resistances[i, keep] = a_ll - 2.0 * column + diag
            resistances[i, ground] = a_ll
            resistances[i, landmark] = 0.0
        np.maximum(resistances, 0.0, out=resistances)
        return cls(graph, landmarks, resistances, strategy=strategy)

    @classmethod
    def from_arrays(
        cls,
        graph: Graph,
        landmarks: np.ndarray,
        resistances: np.ndarray,
        *,
        strategy: str = "degree",
    ) -> "LandmarkSketchStore":
        """Restore a store from persisted arrays (see :mod:`repro.service.artifacts`)."""
        return cls(graph, landmarks, resistances, strategy=strategy)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    def is_landmark(self, node: int) -> bool:
        return int(node) in self._landmark_index

    def bounds(self, s: int, t: int) -> SketchAnswer:
        """The tightest landmark envelope ``lower <= r(s, t) <= upper``.

        When ``s`` or ``t`` is a landmark both bounds equal the exact value
        (the triangle inequality is tight through that landmark).
        """
        s, t = check_node_pair(s, t, self.graph.num_nodes)
        if s == t:
            return SketchAnswer(0.0, 0.0)
        r_s = self.resistances[:, s]
        r_t = self.resistances[:, t]
        lower = float(np.max(np.abs(r_s - r_t)))
        upper = float(np.min(r_s + r_t))
        # Solver round-off can leave lower a hair above upper on exact hits.
        if lower > upper:
            lower = upper = 0.5 * (lower + upper)
        return SketchAnswer(lower, upper)

    def mark_stale(self) -> None:
        """Flag the sketch as built for an older graph epoch.

        A stale sketch refuses to answer (``query`` returns None) until the
        owner rebuilds it — its landmark resistances were exact for a graph
        that no longer exists, so serving them would silently break the
        ε guarantee.  The refresh policy (eager / on-next-read / budgeted)
        lives in :class:`~repro.service.server.ResistanceService`, which owns
        the rebuild.
        """
        self.stale = True

    def gap(self, s: int, t: int) -> Optional[float]:
        """The envelope half-width for ``(s, t)``, or None when stale.

        A planning probe, not a lookup: no stats are touched, so the adaptive
        planner can consult the sketch's tightness for every query without
        distorting the hit-rate counters.  ``gap(s, t) <= ε`` iff
        :meth:`query` would answer at ε.
        """
        if self.stale:
            return None
        return self.bounds(s, t).half_width

    def query(self, s: int, t: int, epsilon: float) -> Optional[SketchAnswer]:
        """Return the envelope iff its midpoint is a valid ε-answer, else None.

        A sketch marked stale (see :meth:`mark_stale`) never answers.
        """
        epsilon = check_positive(epsilon, "epsilon")
        if self.stale:
            return None
        answer = self.bounds(s, t)
        self.stats.lookups += 1
        if not answer.answers(epsilon):
            return None
        self.stats.hits += 1
        if self.is_landmark(s) or self.is_landmark(t):
            self.stats.exact_hits += 1
        return answer

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(landmarks={self.num_landmarks}, "
            f"strategy={self.strategy!r}, n={self.graph.num_nodes})"
        )


__all__ = ["SketchAnswer", "SketchStats", "LandmarkSketchStore", "LANDMARK_STRATEGIES"]
