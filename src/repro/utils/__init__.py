"""Shared utilities: RNG management, timing, logging and validation helpers."""

from repro.utils.logging import get_logger
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer, TimeBudget, timed
from repro.utils.validation import (
    check_node,
    check_node_pair,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "TimeBudget",
    "timed",
    "get_logger",
    "check_node",
    "check_node_pair",
    "check_positive",
    "check_probability",
]
