"""Library logging helpers.

The library never configures the root logger; applications opt into verbose
output via :func:`enable_verbose_logging` (used by the example scripts and the
benchmark harness).
"""

from __future__ import annotations

import logging

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger under the library's ``repro`` namespace."""
    if not name:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def enable_verbose_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the library logger (idempotent)."""
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger


__all__ = ["get_logger", "enable_verbose_logging"]
