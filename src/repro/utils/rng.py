"""Random number generator helpers.

Every stochastic routine in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralising the
conversion keeps behaviour consistent and makes experiments reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence`` or an
        already-constructed ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as a random generator")


def spawn_generators(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Useful when an experiment runs several estimators that should not share a
    random stream (so that re-ordering one does not perturb the others).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike, *labels: Union[int, str]) -> int:
    """Derive a deterministic child seed from ``rng`` and a tuple of labels.

    The same parent seed and labels always yield the same child seed, which
    allows per-query reproducibility inside large sweeps.
    """
    parent = as_generator(rng)
    base = int(parent.integers(0, 2**31 - 1))
    mix = base
    for label in labels:
        mix = hash((mix, label)) & 0x7FFFFFFF
    return mix


def random_choice_csr(
    rng: np.random.Generator,
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    *,
    degrees: Optional[np.ndarray] = None,
    checked: bool = True,
) -> np.ndarray:
    """Sample one uniform neighbour for each node in ``nodes``.

    ``indptr``/``indices`` describe a CSR adjacency structure.  The operation is
    fully vectorised: for node ``v`` with degree ``d(v)`` a uniform offset in
    ``[0, d(v))`` is drawn — one ``rng.random`` call for the whole batch — and
    used to index the CSR ``indices`` array.

    Parameters
    ----------
    degrees:
        Optional precomputed per-node degree array (``float64``, length ``n``).
        When given, the per-call ``indptr`` subtraction is replaced by a single
        gather; the drawn offsets are bit-identical either way (degrees are
        exact in ``float64``).
    checked:
        When false, the isolated-node guard is skipped.  Callers that have
        already validated the graph (e.g. the walk engine, whose constructor
        rejects graphs with isolated nodes) avoid an O(batch) scan per step.
    """
    starts = indptr[nodes]
    if degrees is None:
        node_degrees = (indptr[nodes + 1] - starts).astype(np.float64)
    else:
        node_degrees = degrees[nodes]
    if checked and np.any(node_degrees == 0):
        raise ValueError("cannot sample a neighbour of an isolated node")
    draws = rng.random(len(nodes))
    draws *= node_degrees
    offsets = draws.astype(np.int64)
    # Guard against the (measure-zero, but floating-point-possible) case where
    # rng.random() returns a value so close to 1.0 that the offset equals the
    # degree after truncation (truncation == floor for these non-negative
    # products, so the offsets match the historical floor-then-cast kernel
    # bit-for-bit).
    np.minimum(offsets, node_degrees.astype(np.int64) - 1, out=offsets)
    return indices[starts + offsets]


__all__ = ["RngLike", "as_generator", "spawn_generators", "derive_seed", "random_choice_csr"]
