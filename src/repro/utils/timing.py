"""Wall-clock timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


class Timer:
    """A simple cumulative wall-clock timer.

    Can be used either as a context manager::

        timer = Timer()
        with timer:
            expensive_call()
        print(timer.elapsed)

    or via explicit :meth:`start` / :meth:`stop` calls.  Multiple measured
    sections accumulate into :attr:`elapsed`.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("timer already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0


@dataclass
class TimeBudget:
    """A soft per-task time budget, mirroring the paper's per-query timeout.

    The paper excludes any method that cannot answer every query within one day.
    At laptop scale we use a configurable budget in seconds; the harness checks
    :meth:`exceeded` between queries and marks the method as timed out.
    """

    seconds: float = math.inf
    _start: float = field(default_factory=time.perf_counter)

    def restart(self) -> None:
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        return self.seconds - self.elapsed

    def exceeded(self) -> bool:
        return self.elapsed > self.seconds


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a running :class:`Timer`."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()


def time_call(func: Callable[[], T]) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


__all__ = ["Timer", "TimeBudget", "timed", "time_call"]
