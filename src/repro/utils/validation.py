"""Argument validation helpers shared across the library.

All validation errors are raised as :class:`ValueError` with a message naming
the offending argument, so estimator call sites stay small and consistent.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Iterable, Sequence


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a finite positive (or non-negative) number."""
    if not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = check_positive(value, name, strict=True)
    if value >= 1:
        raise ValueError(f"{name} must be < 1, got {value!r}")
    return value


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer, optionally bounded below."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_node(node: Any, num_nodes: int, name: str = "node") -> int:
    """Validate that ``node`` is a valid node identifier in ``[0, num_nodes)``.

    Accepts anything with an integral ``__index__`` (Python ints, numpy
    integer scalars); rejects bools, floats (even integral ones like ``3.0``)
    and strings instead of silently coercing them with ``int(...)``.
    """
    if isinstance(node, bool):
        raise ValueError(f"{name} must be an integer node id, got a bool")
    try:
        node = operator.index(node)
    except TypeError as exc:
        raise ValueError(
            f"{name} must be an integer node id, got {node!r} "
            f"of type {type(node).__name__}"
        ) from exc
    if not 0 <= node < num_nodes:
        raise ValueError(f"{name}={node} out of range for graph with {num_nodes} nodes")
    return int(node)


def check_node_pair(s: Any, t: Any, num_nodes: int) -> tuple[int, int]:
    """Validate a pair of node identifiers."""
    return check_node(s, num_nodes, "s"), check_node(t, num_nodes, "t")


def check_query_pairs(
    pairs: Iterable[Sequence[Any]], num_nodes: int
) -> list[tuple[int, int]]:
    """Validate an iterable of ``(s, t)`` query pairs.

    Every entry must unpack into exactly two valid node ids (numpy integer
    scalars are fine; floats, strings and out-of-range ids are not).  Errors
    name the offending pair and its position so a bad entry in a long batch is
    easy to locate.
    """
    validated: list[tuple[int, int]] = []
    for index, pair in enumerate(pairs):
        try:
            s, t = pair
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"pair #{index} ({pair!r}) does not unpack into (s, t)"
            ) from exc
        try:
            validated.append(check_node_pair(s, t, num_nodes))
        except ValueError as exc:
            raise ValueError(f"pair #{index} ({s!r}, {t!r}): {exc}") from exc
    return validated


__all__ = [
    "check_positive",
    "check_probability",
    "check_integer",
    "check_node",
    "check_node_pair",
    "check_query_pairs",
]
