"""Argument validation helpers shared across the library.

All validation errors are raised as :class:`ValueError` with a message naming
the offending argument, so estimator call sites stay small and consistent.
"""

from __future__ import annotations

import math
from typing import Any


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a finite positive (or non-negative) number."""
    if not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = check_positive(value, name, strict=True)
    if value >= 1:
        raise ValueError(f"{name} must be < 1, got {value!r}")
    return value


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer, optionally bounded below."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_node(node: Any, num_nodes: int, name: str = "node") -> int:
    """Validate that ``node`` is a valid node identifier in ``[0, num_nodes)``."""
    if isinstance(node, bool) or not isinstance(node, (int,)):
        try:
            node = int(node)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{name} must be an integer node id") from exc
    if not 0 <= node < num_nodes:
        raise ValueError(f"{name}={node} out of range for graph with {num_nodes} nodes")
    return int(node)


def check_node_pair(s: Any, t: Any, num_nodes: int) -> tuple[int, int]:
    """Validate a pair of node identifiers."""
    return check_node(s, num_nodes, "s"), check_node(t, num_nodes, "t")


__all__ = [
    "check_positive",
    "check_probability",
    "check_integer",
    "check_node",
    "check_node_pair",
]
