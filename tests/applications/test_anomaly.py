"""Unit tests for anomalous-change detection on evolving graphs."""

import numpy as np
import pytest

from repro.applications.anomaly import (
    edge_change_scores,
    most_anomalous_nodes,
    node_change_scores,
)
from repro.graph.builders import from_edges
from repro.graph.generators import stochastic_block_model_graph


@pytest.fixture(scope="module")
def two_cluster_snapshots():
    """Before: two clusters joined by one bridge.  After: a second bridge appears
    and one intra-cluster edge disappears."""
    before = stochastic_block_model_graph([15, 15], 0.6, 0.0, rng=7, connect=False)
    before = before.add_edges([(0, 15)])  # single bridge
    intra_edge = next((u, v) for u, v in before.edges() if u < 15 and v < 15 and u != 0)
    after = before.add_edges([(7, 22)]).remove_edges([intra_edge])
    return before, after, intra_edge


class TestEdgeChangeScores:
    def test_detects_added_and_removed(self, two_cluster_snapshots):
        before, after, intra_edge = two_cluster_snapshots
        changes = edge_change_scores(before, after)
        kinds = {(change.edge, change.kind) for change in changes}
        assert ((7, 22), "added") in kinds
        assert (intra_edge, "removed") in kinds

    def test_cross_cluster_addition_scores_highest(self, two_cluster_snapshots):
        before, after, _ = two_cluster_snapshots
        changes = edge_change_scores(before, after)
        assert changes[0].edge == (7, 22)
        assert changes[0].kind == "added"
        # the new bridge closed a long-resistance gap, the removed intra edge did not
        assert changes[0].score > 3 * changes[-1].score

    def test_no_changes(self, two_cluster_snapshots):
        before, _, _ = two_cluster_snapshots
        assert edge_change_scores(before, before) == []

    def test_mismatched_node_sets_rejected(self, two_cluster_snapshots):
        before, _, _ = two_cluster_snapshots
        other = from_edges([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            edge_change_scores(before, other)

    def test_approximate_scores_close_to_exact(self, two_cluster_snapshots):
        before, after, _ = two_cluster_snapshots
        exact = edge_change_scores(before, after)
        approx = edge_change_scores(before, after, epsilon=0.1, rng=3)
        exact_top = exact[0].edge
        approx_top = approx[0].edge
        assert exact_top == approx_top


class TestNodeScores:
    def test_bridge_endpoints_most_anomalous(self, two_cluster_snapshots):
        before, after, _ = two_cluster_snapshots
        top = most_anomalous_nodes(before, after, top_k=2)
        top_nodes = {node for node, _ in top}
        assert top_nodes == {7, 22}

    def test_scores_shape_and_nonnegativity(self, two_cluster_snapshots):
        before, after, _ = two_cluster_snapshots
        scores = node_change_scores(before, after)
        assert scores.shape == (before.num_nodes,)
        assert np.all(scores >= 0)

    def test_untouched_nodes_score_zero(self, two_cluster_snapshots):
        before, after, intra_edge = two_cluster_snapshots
        scores = node_change_scores(before, after)
        touched = {7, 22, *intra_edge}
        untouched = [v for v in range(before.num_nodes) if v not in touched]
        assert np.allclose(scores[untouched], 0.0)
