"""Unit tests for centrality and robustness applications."""

import numpy as np
import pytest

from repro.applications.centrality import current_flow_closeness, spanning_edge_centrality
from repro.applications.robustness import edge_criticality_ranking, kirchhoff_index
from repro.graph.builders import from_edges
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestSpanningEdgeCentrality:
    def test_exact_values_on_cycle(self):
        graph = cycle_graph(5)
        values = spanning_edge_centrality(graph)
        np.testing.assert_allclose(values, 4 / 5)

    def test_fosters_theorem(self):
        """Foster's theorem: the edge resistances of a connected graph sum to n - 1."""
        graph = barabasi_albert_graph(80, 4, rng=1)
        values = spanning_edge_centrality(graph)
        assert values.sum() == pytest.approx(graph.num_nodes - 1, abs=1e-6)

    def test_bridge_has_unit_centrality(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        values = spanning_edge_centrality(graph)
        edges = list(map(tuple, graph.edge_array()))
        bridge_index = edges.index((2, 3))
        assert values[bridge_index] == pytest.approx(1.0)

    def test_approximate_mode_close_to_exact(self):
        graph = barabasi_albert_graph(60, 5, rng=2)
        exact = spanning_edge_centrality(graph)
        approx = spanning_edge_centrality(graph, epsilon=0.1, method="geer", rng=3)
        assert np.max(np.abs(exact - approx)) <= 0.1


class TestCurrentFlowCloseness:
    def test_star_centre_most_central(self):
        graph = star_graph(6)
        closeness = current_flow_closeness(graph)
        assert closeness[0] == closeness.max()

    def test_path_endpoints_least_central(self):
        graph = path_graph(7)
        closeness = current_flow_closeness(graph)
        assert np.argmin(closeness) in (0, 6)
        assert np.argmax(closeness) == 3

    def test_subset_of_nodes(self):
        graph = complete_graph(6)
        closeness = current_flow_closeness(graph, nodes=np.array([0, 3]))
        assert closeness.shape == (2,)
        assert closeness[0] == pytest.approx(closeness[1])


class TestRobustness:
    def test_kirchhoff_complete_graph(self):
        # Kf(K_n) = n - 1 ... actually sum over pairs of 2/n = C(n,2) * 2/n = n - 1
        graph = complete_graph(10)
        assert kirchhoff_index(graph) == pytest.approx(9.0)

    def test_kirchhoff_path(self):
        graph = path_graph(4)
        # sum of |i-j| over pairs: (1+2+3)+(1+2)+(1) = 10
        assert kirchhoff_index(graph) == pytest.approx(10.0)

    def test_kirchhoff_decreases_with_added_edge(self):
        graph = path_graph(5)
        denser = graph.add_edges([(0, 4)])
        assert kirchhoff_index(denser) < kirchhoff_index(graph)

    def test_criticality_ranking_flags_bridges(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
        ranking = edge_criticality_ranking(graph)
        assert ranking[0].edge == (2, 3)
        assert ranking[0].disconnects
        assert ranking[0].resistance == pytest.approx(1.0)
        # all other edges keep the graph connected
        assert all(not record.disconnects for record in ranking[1:])

    def test_top_k(self):
        graph = complete_graph(6)
        ranking = edge_criticality_ranking(graph, top_k=4)
        assert len(ranking) == 4

    def test_kirchhoff_increase_positive(self):
        graph = complete_graph(5)
        ranking = edge_criticality_ranking(graph)
        for record in ranking:
            assert record.kirchhoff_increase > 0
