"""Unit tests for effective-resistance clustering."""

import numpy as np
import pytest

from repro.applications.clustering import (
    clustering_accuracy,
    effective_resistance_clustering,
)
from repro.graph.generators import stochastic_block_model_graph


@pytest.fixture(scope="module")
def sbm():
    return stochastic_block_model_graph([30, 30, 30], 0.4, 0.01, rng=91)


class TestClustering:
    def test_recovers_planted_partition(self, sbm):
        truth = np.repeat([0, 1, 2], 30)
        result = effective_resistance_clustering(sbm, 3, rng=1)
        assert clustering_accuracy(result.labels, truth) >= 0.9

    def test_number_of_clusters(self, sbm):
        result = effective_resistance_clustering(sbm, 3, rng=2)
        assert result.num_clusters == 3
        assert len(result.labels) == sbm.num_nodes
        assert set(result.labels.tolist()) <= {0, 1, 2}

    def test_cluster_members_partition(self, sbm):
        result = effective_resistance_clustering(sbm, 3, rng=3)
        total = sum(len(result.cluster_members(c)) for c in range(3))
        assert total == sbm.num_nodes

    def test_single_cluster(self, sbm):
        result = effective_resistance_clustering(sbm, 1, rng=4)
        assert set(result.labels.tolist()) == {0}

    def test_too_many_clusters_rejected(self, sbm):
        with pytest.raises(ValueError):
            effective_resistance_clustering(sbm, sbm.num_nodes + 1)

    def test_custom_distance_fn(self, sbm):
        calls = {"count": 0}

        def fake_distance(u, v):
            calls["count"] += 1
            return abs(u - v) / sbm.num_nodes

        result = effective_resistance_clustering(
            sbm, 2, distance_fn=fake_distance, degree_corrected=False, rng=5
        )
        assert calls["count"] > 0
        assert result.num_clusters == 2


class TestClusteringAccuracy:
    def test_perfect(self):
        assert clustering_accuracy([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_partial(self):
        assert clustering_accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == 0.75

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            clustering_accuracy([0, 1], [0, 1, 2])
