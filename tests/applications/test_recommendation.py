"""Unit tests for the bipartite effective-resistance recommender."""

import pytest

from repro.applications.recommendation import BipartiteRecommender


def two_community_interactions():
    """Two communities of 6 users x 6 items; each user consumes 3 of the 6 items."""
    interactions = []
    for uid in range(6):
        for offset in range(3):
            interactions.append((f"u{uid}", f"A{(uid + offset) % 6}"))
    for uid in range(6, 12):
        for offset in range(3):
            interactions.append((f"u{uid}", f"B{(uid + offset) % 6}"))
    # bridges keeping the graph connected
    interactions.append(("u0", "B0"))
    interactions.append(("u6", "A0"))
    return interactions


class TestRecommender:
    def test_scores_lower_within_community(self):
        recommender = BipartiteRecommender(two_community_interactions())
        own = recommender.score("u1", "A2")
        other = recommender.score("u1", "B2")
        assert own < other

    def test_recommend_excludes_seen(self):
        recommender = BipartiteRecommender(two_community_interactions())
        recs = recommender.recommend("u1", top_k=3)
        rec_items = [item for item, _ in recs]
        assert "A1" not in rec_items  # already consumed
        assert len(recs) == 3

    def test_recommend_includes_seen_when_asked(self):
        recommender = BipartiteRecommender(two_community_interactions())
        recs = recommender.recommend("u1", top_k=20, exclude_seen=False)
        assert len(recs) == 12  # all items across both communities

    def test_recommendations_prefer_own_community(self):
        recommender = BipartiteRecommender(two_community_interactions())
        recs = recommender.recommend("u7", top_k=3)
        assert all(item.startswith("B") for item, _ in recs)

    def test_unknown_user(self):
        recommender = BipartiteRecommender(two_community_interactions())
        with pytest.raises(KeyError):
            recommender.recommend("ghost")
        with pytest.raises(KeyError):
            recommender.score("ghost", "A0")

    def test_unknown_item(self):
        recommender = BipartiteRecommender(two_community_interactions())
        with pytest.raises(KeyError):
            recommender.score("u0", "nope")

    def test_empty_interactions_rejected(self):
        with pytest.raises(ValueError):
            BipartiteRecommender([])

    def test_disconnected_interactions_rejected(self):
        interactions = [("u0", "A0"), ("u1", "B0")]
        with pytest.raises(ValueError):
            BipartiteRecommender(interactions)

    def test_estimate_backend(self):
        recommender = BipartiteRecommender(
            two_community_interactions(), backend="estimate", epsilon=0.1, rng=1
        )
        own = recommender.score("u1", "A2")
        other = recommender.score("u1", "B2")
        assert own < other + 0.2  # approximate scores still separate communities broadly

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            BipartiteRecommender(two_community_interactions(), backend="nope")
