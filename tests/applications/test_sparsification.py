"""Unit tests for effective-resistance graph sparsification."""

import numpy as np
import pytest

from repro.applications.sparsification import spectral_sparsify
from repro.baselines.ground_truth import GroundTruthOracle
from repro.graph.generators import barabasi_albert_graph, complete_graph
from repro.graph.properties import is_connected


@pytest.fixture(scope="module")
def dense_graph():
    return barabasi_albert_graph(150, 12, rng=81)


@pytest.mark.slow
class TestSparsify:
    """Statistical sampling tests — the heaviest block in the suite, skipped
    by CI quick mode (-m "not slow")."""

    def test_reduces_edges(self, dense_graph):
        sparsifier = spectral_sparsify(
            dense_graph, epsilon=1.0, oversampling=1.0, resistance_epsilon=0.2, rng=1
        )
        assert sparsifier.num_edges < dense_graph.num_edges

    def test_quadratic_form_preserved(self, dense_graph):
        sparsifier = spectral_sparsify(
            dense_graph, epsilon=0.8, oversampling=3.0, resistance_epsilon=0.2, rng=2
        )
        error = sparsifier.quadratic_form_error(dense_graph, probes=25, rng=3)
        assert error < 0.6

    def test_laplacian_unbiased_total_weight(self, dense_graph):
        # expected total edge weight equals the original edge count
        sparsifier = spectral_sparsify(
            dense_graph, epsilon=1.0, oversampling=2.0, resistance_epsilon=0.2, rng=4
        )
        assert sparsifier.weights.sum() == pytest.approx(dense_graph.num_edges, rel=0.25)

    def test_exact_resistances_can_be_supplied(self):
        graph = complete_graph(20)
        oracle = GroundTruthOracle(graph)
        sparsifier = spectral_sparsify(
            graph, epsilon=0.9, oversampling=2.0, rng=5, resistance_fn=oracle.query
        )
        assert sparsifier.num_edges <= graph.num_edges
        assert is_connected(sparsifier.graph) or sparsifier.num_edges < graph.num_nodes - 1

    def test_weights_positive(self, dense_graph):
        sparsifier = spectral_sparsify(
            dense_graph, epsilon=1.0, oversampling=1.0, resistance_epsilon=0.2, rng=6
        )
        assert np.all(sparsifier.weights > 0)
        assert len(sparsifier.weights) == sparsifier.num_edges

    def test_laplacian_shape(self, dense_graph):
        sparsifier = spectral_sparsify(
            dense_graph, epsilon=1.2, oversampling=1.0, resistance_epsilon=0.3, rng=7
        )
        laplacian = sparsifier.laplacian_matrix()
        assert laplacian.shape == (dense_graph.num_nodes, dense_graph.num_nodes)
        np.testing.assert_allclose(np.asarray(laplacian.sum(axis=1)).ravel(), 0.0, atol=1e-9)

    def test_invalid_epsilon(self, dense_graph):
        with pytest.raises(ValueError):
            spectral_sparsify(dense_graph, epsilon=0.0)
