"""Unit tests for the EXACT baseline and the ground-truth oracle."""

import numpy as np
import pytest

from repro.baselines.exact import ExactEffectiveResistance, exact_effective_resistance
from repro.baselines.ground_truth import GroundTruthOracle, ground_truth_resistance
from repro.exceptions import BudgetExceededError
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


class TestExact:
    def test_closed_forms(self):
        oracle = ExactEffectiveResistance(complete_graph(10))
        assert oracle.query(0, 5) == pytest.approx(0.2)
        path_oracle = ExactEffectiveResistance(path_graph(4))
        assert path_oracle.query(0, 3) == pytest.approx(3.0)

    def test_all_pairs_matrix(self):
        graph = cycle_graph(5)
        oracle = ExactEffectiveResistance(graph)
        matrix = oracle.all_pairs()
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        assert matrix[0, 1] == pytest.approx(4 / 5)

    def test_refuses_large_graphs(self):
        graph = barabasi_albert_graph(200, 3, rng=1)
        with pytest.raises(BudgetExceededError):
            ExactEffectiveResistance(graph, max_nodes=100)

    def test_one_shot_helper(self):
        result = exact_effective_resistance(star_graph(4), 1, 2)
        assert result.value == pytest.approx(2.0)
        assert result.method == "exact"

    def test_query_validation(self):
        oracle = ExactEffectiveResistance(complete_graph(5))
        with pytest.raises(ValueError):
            oracle.query(0, 5)


class TestGroundTruthOracle:
    def test_dense_and_cg_paths_agree(self, ba_small):
        dense = GroundTruthOracle(ba_small, dense_threshold=10_000)
        sparse = GroundTruthOracle(ba_small, dense_threshold=1)
        for s, t in [(0, 5), (3, 77), (10, 150)]:
            assert dense.query(s, t) == pytest.approx(sparse.query(s, t), abs=1e-7)

    def test_cache_returns_same_object_value(self, ba_small):
        oracle = GroundTruthOracle(ba_small)
        first = oracle.query(1, 2)
        second = oracle.query(2, 1)  # symmetric key
        assert first == second

    def test_same_node(self, ba_small):
        assert GroundTruthOracle(ba_small).query(4, 4) == 0.0

    def test_query_many(self, ba_small):
        oracle = GroundTruthOracle(ba_small)
        values = oracle.query_many([(0, 1), (2, 3)])
        assert values.shape == (2,)
        assert np.all(values > 0)

    def test_one_shot_helper(self):
        assert ground_truth_resistance(path_graph(3), 0, 2) == pytest.approx(2.0)

    def test_matches_exact_on_random_graph(self, ba_small, ba_small_oracle):
        exact = ExactEffectiveResistance(ba_small)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, t = rng.integers(0, ba_small.num_nodes, size=2)
            assert ba_small_oracle.query(int(s), int(t)) == pytest.approx(
                exact.query(int(s), int(t)), abs=1e-7
            )
