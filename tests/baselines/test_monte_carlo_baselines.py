"""Unit tests for the MC, MC2, TP and TPC baselines."""

import numpy as np
import pytest

from repro.baselines.mc import mc_query, mc_walk_budget
from repro.baselines.mc2 import mc2_query, mc2_walk_budget
from repro.baselines.tp import tp_query, tp_walks_per_length
from repro.baselines.tpc import tpc_query, tpc_walks_per_length
from repro.graph.generators import barabasi_albert_graph, complete_graph
from repro.linalg.eigen import spectral_radius_second


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(150, 6, rng=61)


@pytest.fixture(scope="module")
def lam(graph):
    return spectral_radius_second(graph)


@pytest.fixture(scope="module")
def oracle(graph):
    from repro.baselines.ground_truth import GroundTruthOracle

    return GroundTruthOracle(graph)


class TestMC:
    def test_accuracy_on_complete_graph(self):
        graph = complete_graph(15)
        result = mc_query(graph, 0, 7, epsilon=0.1, rng=1, num_walks=3000)
        assert result.value == pytest.approx(2 / 15, abs=0.03)

    def test_accuracy_on_random_graph(self, graph, oracle):
        result = mc_query(graph, 2, 90, epsilon=0.1, rng=2, num_walks=4000)
        assert abs(result.value - oracle.query(2, 90)) <= 0.05

    def test_same_node(self, graph):
        assert mc_query(graph, 3, 3, epsilon=0.1).value == 0.0

    def test_budget_formula(self):
        assert mc_walk_budget(10, 1.0, 0.1, 0.01) == int(
            np.ceil(3 * 1.0 * 10 * np.log(100) / 0.01)
        )

    def test_metadata(self, graph):
        result = mc_query(graph, 0, 1, epsilon=0.3, rng=3, num_walks=200)
        assert result.method == "mc"
        assert result.num_walks <= 200
        assert result.total_steps > 0


class TestMC2:
    def test_requires_edge(self, graph):
        non_edges = [(u, v) for u in range(20) for v in range(20, 40) if not graph.has_edge(u, v)]
        u, v = non_edges[0]
        with pytest.raises(ValueError):
            mc2_query(graph, u, v, epsilon=0.1)

    def test_accuracy_on_edge(self, graph, oracle):
        u, v = next(iter(graph.edges()))
        result = mc2_query(graph, u, v, epsilon=0.1, rng=4, num_walks=4000)
        assert abs(result.value - oracle.query(u, v)) <= 0.05

    def test_accuracy_on_complete_graph_edge(self):
        graph = complete_graph(12)
        result = mc2_query(graph, 0, 1, epsilon=0.05, rng=5, num_walks=8000)
        assert result.value == pytest.approx(2 / 12, abs=0.03)

    def test_value_is_probability(self, graph):
        u, v = list(graph.edges())[3]
        result = mc2_query(graph, u, v, epsilon=0.2, rng=6, num_walks=500)
        assert 0.0 <= result.value <= 1.0

    def test_budget_formula(self):
        assert mc2_walk_budget(0.1, 0.01, 0.5) == int(np.ceil(3 * np.log(100) / (0.01 * 0.5)))


class TestTP:
    def test_walk_budget_formula(self):
        expected = int(np.ceil(40 * 25 * np.log(8 * 5 / 0.01) / 0.04))
        assert tp_walks_per_length(5, 0.2, 0.01) == expected
        assert tp_walks_per_length(0, 0.2, 0.01) == 0

    def test_accuracy_with_scaled_budget(self, graph, lam, oracle):
        result = tp_query(
            graph, 1, 80, epsilon=0.2, lambda_max_abs=lam, rng=7, budget_scale=0.02
        )
        assert abs(result.value - oracle.query(1, 80)) <= 0.2

    def test_same_node(self, graph, lam):
        assert tp_query(graph, 5, 5, epsilon=0.2, lambda_max_abs=lam).value == 0.0

    def test_budget_scale_validation(self, graph, lam):
        with pytest.raises(ValueError):
            tp_query(graph, 0, 1, epsilon=0.2, lambda_max_abs=lam, budget_scale=2.0)

    def test_uses_peng_length_by_default(self, graph, lam):
        from repro.core.walk_length import peng_walk_length

        result = tp_query(
            graph, 0, 40, epsilon=0.3, lambda_max_abs=lam, rng=8, budget_scale=0.01
        )
        assert result.walk_length == peng_walk_length(0.3, lam)

    def test_step_cap_flags_budget(self, graph, lam):
        result = tp_query(
            graph, 0, 40, epsilon=0.1, lambda_max_abs=lam, rng=9,
            budget_scale=1.0, max_total_steps=1000,
        )
        assert result.budget_exhausted


class TestTPC:
    def test_walk_budget_formula(self):
        value = tpc_walks_per_length(4, 0.2, 0.001, constant=100.0)
        expected = int(np.ceil(100 * (4 * np.sqrt(4 * 0.001) / 0.2 + 64 * 0.001**1.5 / 0.04)))
        assert value == expected

    def test_accuracy_with_scaled_budget(self, graph, lam, oracle):
        result = tpc_query(
            graph, 3, 70, epsilon=0.2, lambda_max_abs=lam, rng=10, budget_scale=0.01
        )
        assert abs(result.value - oracle.query(3, 70)) <= 0.2

    def test_collision_estimator_on_complete_graph(self):
        graph = complete_graph(10)
        lam = spectral_radius_second(graph)
        result = tpc_query(
            graph, 0, 5, epsilon=0.1, lambda_max_abs=lam, rng=11, budget_scale=0.05
        )
        assert result.value == pytest.approx(0.2, abs=0.1)

    def test_same_node(self, graph, lam):
        assert tpc_query(graph, 2, 2, epsilon=0.2, lambda_max_abs=lam).value == 0.0

    def test_metadata(self, graph, lam):
        result = tpc_query(
            graph, 0, 30, epsilon=0.3, lambda_max_abs=lam, rng=12, budget_scale=0.01
        )
        assert result.method == "tpc"
        assert result.details["walks_per_length"] >= 1
        assert result.num_walks > 0
