"""Unit tests for the RP (random projection) and HAY (spanning tree) baselines."""

import numpy as np
import pytest

from repro.baselines.hay import hay_query, hay_sample_budget
from repro.baselines.rp import RandomProjectionSketch, rp_query
from repro.exceptions import BudgetExceededError
from repro.graph.generators import barabasi_albert_graph, complete_graph, cycle_graph


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 5, rng=71)


@pytest.fixture(scope="module")
def oracle(graph):
    from repro.baselines.ground_truth import GroundTruthOracle

    return GroundTruthOracle(graph)


class TestRandomProjection:
    def test_sketch_dimension_formula(self, graph):
        sketch = RandomProjectionSketch(graph, 0.5, jl_constant=8.0, rng=1)
        assert sketch.sketch_dimension == int(np.ceil(8 * np.log(graph.num_nodes) / 0.25))

    def test_query_accuracy(self, graph, oracle):
        sketch = RandomProjectionSketch(graph, 0.3, jl_constant=24.0, rng=2)
        rng = np.random.default_rng(3)
        for _ in range(6):
            s, t = rng.choice(graph.num_nodes, size=2, replace=False)
            truth = oracle.query(int(s), int(t))
            # JL gives a relative guarantee; at these resistances it is far below 0.3
            assert sketch.query(int(s), int(t)) == pytest.approx(truth, rel=0.35, abs=0.05)

    def test_same_node_zero(self, graph):
        sketch = RandomProjectionSketch(graph, 0.5, sketch_dimension=30, rng=4)
        assert sketch.query(7, 7) == 0.0

    def test_memory_guard(self, graph):
        with pytest.raises(BudgetExceededError):
            RandomProjectionSketch(graph, 0.5, sketch_dimension=1000, max_sketch_bytes=1000)

    def test_explicit_dimension_override(self, graph):
        sketch = RandomProjectionSketch(graph, 0.5, sketch_dimension=12, rng=5)
        assert sketch.sketch == pytest.approx(sketch.sketch)  # materialised
        assert sketch.sketch.shape == (12, graph.num_nodes)

    def test_one_shot_helper(self, graph, oracle):
        result = rp_query(graph, 0, 50, epsilon=0.4, rng=6, jl_constant=12.0)
        assert result.method == "rp"
        assert abs(result.value - oracle.query(0, 50)) <= 0.4

    def test_cycle_graph_sanity(self):
        graph = cycle_graph(9)
        sketch = RandomProjectionSketch(graph, 0.3, jl_constant=24.0, rng=7)
        assert sketch.query(0, 1) == pytest.approx(8 / 9, rel=0.35)


class TestHay:
    def test_sample_budget(self):
        assert hay_sample_budget(0.1, 0.01) == int(np.ceil(np.log(200) / 0.02))

    def test_requires_edge(self, graph):
        non_edge = None
        for u in range(graph.num_nodes):
            for v in range(u + 1, graph.num_nodes):
                if not graph.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        with pytest.raises(ValueError):
            hay_query(graph, *non_edge, epsilon=0.2)

    def test_edge_accuracy(self, graph, oracle):
        u, v = list(graph.edges())[5]
        result = hay_query(graph, u, v, epsilon=0.1, rng=8, num_samples=400)
        assert abs(result.value - oracle.query(u, v)) <= 0.1

    def test_complete_graph_edge(self):
        graph = complete_graph(8)
        result = hay_query(graph, 0, 1, epsilon=0.1, rng=9, num_samples=500)
        assert result.value == pytest.approx(2 / 8, abs=0.08)

    def test_cycle_graph_edge(self):
        graph = cycle_graph(6)
        result = hay_query(graph, 0, 1, epsilon=0.1, rng=10, num_samples=500)
        assert result.value == pytest.approx(5 / 6, abs=0.08)

    def test_max_samples_flags_budget(self, graph):
        u, v = next(iter(graph.edges()))
        result = hay_query(graph, u, v, epsilon=0.01, rng=11, max_samples=50)
        assert result.budget_exhausted
        assert result.num_walks == 50

    def test_value_is_probability(self, graph):
        u, v = list(graph.edges())[10]
        result = hay_query(graph, u, v, epsilon=0.3, rng=12, num_samples=50)
        assert 0.0 <= result.value <= 1.0
