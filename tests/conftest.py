"""Shared fixtures for the test-suite.

Small deterministic graphs with known effective resistances, plus a couple of
random graphs (fixed seeds) used by the estimator and application tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the shared strategy module (tests/strategies.py) importable from the
# nested test packages (tests/graph, tests/sampling, ...), which pytest does
# not put on sys.path in rootdir-relative layouts without __init__.py files.
_TESTS_DIR = Path(__file__).resolve().parent
if str(_TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(_TESTS_DIR))

from repro.baselines.ground_truth import GroundTruthOracle
from repro.graph.builders import from_edges, with_random_weights
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    stochastic_block_model_graph,
    watts_strogatz_graph,
)


@pytest.fixture(scope="session")
def path5():
    """Path graph 0-1-2-3-4; r(i, j) = |i - j|."""
    return path_graph(5)


@pytest.fixture(scope="session")
def cycle6():
    """Cycle on 6 nodes; r(i, j) = k (6 - k) / 6 with k the hop distance."""
    return cycle_graph(6)


@pytest.fixture(scope="session")
def complete8():
    """Complete graph K8; r(u, v) = 2/8 = 0.25."""
    return complete_graph(8)


@pytest.fixture(scope="session")
def star6():
    """Star with 6 leaves; r(centre, leaf) = 1, r(leaf, leaf) = 2."""
    return star_graph(6)


@pytest.fixture(scope="session")
def grid4x4():
    return grid_graph(4, 4)


@pytest.fixture(scope="session")
def ba_small():
    """Dense-ish Barabási–Albert graph used by estimator accuracy tests."""
    return barabasi_albert_graph(200, 6, rng=11)


@pytest.fixture(scope="session")
def ba_dense():
    """Denser BA graph (higher average degree) for GEER / refined-length tests."""
    return barabasi_albert_graph(300, 15, rng=12)


@pytest.fixture(scope="session")
def ws_small():
    """Watts–Strogatz graph: homogeneous degrees, non-bipartite, connected."""
    return watts_strogatz_graph(150, 6, 0.2, rng=13)


@pytest.fixture(scope="session")
def sbm_two_blocks():
    return stochastic_block_model_graph([30, 30], 0.4, 0.04, rng=14)


@pytest.fixture(scope="session")
def weighted_triangle():
    """Weighted triangle with distinct weights; closed-form resistances.

    Parallel/series rules give e.g. r(0, 1) = 1 / (w01 + 1/(1/w02 + 1/w12)).
    """
    return from_edges([(0, 1, 2.0), (1, 2, 0.5), (0, 2, 1.5)])


@pytest.fixture(scope="session")
def ba_weighted():
    """Weighted Barabási–Albert graph (same topology as ``ba_small``)."""
    return with_random_weights(barabasi_albert_graph(200, 6, rng=11), rng=21)


@pytest.fixture(scope="session")
def ba_small_oracle(ba_small):
    return GroundTruthOracle(ba_small)


@pytest.fixture(scope="session")
def ba_dense_oracle(ba_dense):
    return GroundTruthOracle(ba_dense)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
