"""Unit tests for AMC (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.amc import amc_estimate, amc_query
from repro.core.smm import SMMState
from repro.core.walk_length import refined_walk_length
from repro.graph.generators import barabasi_albert_graph, complete_graph
from repro.linalg.eigen import spectral_radius_second
from repro.sampling.walks import RandomWalkEngine


@pytest.fixture(scope="module")
def dense_graph():
    return barabasi_albert_graph(250, 10, rng=31)


@pytest.fixture(scope="module")
def dense_lambda(dense_graph):
    return spectral_radius_second(dense_graph)


def one_hot(n, i):
    vec = np.zeros(n)
    vec[i] = 1.0
    return vec


class TestAMCCore:
    def test_unbiased_for_q(self, dense_graph):
        """The core estimates q(s, t) of Eq. (12): check against the exact series."""
        s, t = 3, 50
        length = 4
        n = dense_graph.num_nodes
        transition = dense_graph.transition_matrix().toarray()
        deg = dense_graph.degrees.astype(float)
        weights = one_hot(n, s) / deg[s] - one_hot(n, t) / deg[t]
        exact_q = 0.0
        ps = one_hot(n, s)
        pt = one_hot(n, t)
        for _ in range(length):
            ps = ps @ transition
            pt = pt @ transition
            exact_q += float((ps - pt) @ weights)
        result = amc_estimate(
            dense_graph, s, t, one_hot(n, s), one_hot(n, t),
            epsilon=0.05, walk_length=length, num_batches=5, delta=0.01, rng=5,
        )
        assert abs(result.value - exact_q) <= 0.05

    def test_zero_walk_length_returns_zero(self, dense_graph):
        n = dense_graph.num_nodes
        result = amc_estimate(
            dense_graph, 0, 1, one_hot(n, 0), one_hot(n, 1),
            epsilon=0.1, walk_length=0,
        )
        assert result.value == 0.0
        assert result.num_walks == 0

    def test_psi_matches_one_hot_formula(self, dense_graph):
        n = dense_graph.num_nodes
        s, t = 2, 9
        length = 6
        result = amc_estimate(
            dense_graph, s, t, one_hot(n, s), one_hot(n, t),
            epsilon=0.2, walk_length=length, rng=1,
        )
        expected_psi = 2 * np.ceil(length / 2) * (
            1 / dense_graph.degree(s) + 1 / dense_graph.degree(t)
        )
        assert result.psi == pytest.approx(expected_psi)

    def test_early_termination_uses_fewer_walks(self, dense_graph):
        """With many batches allowed, the empirical Bernstein check stops well below η*.

        Early termination is only possible when ψ is large relative to ε (so the
        additive Bernstein term can drop below ε/2 before the Hoeffding cap) and
        the observed variance is small — which is the case for this configuration.
        """
        n = dense_graph.num_nodes
        s, t = 4, 100
        result = amc_estimate(
            dense_graph, s, t, one_hot(n, s), one_hot(n, t),
            epsilon=0.02, walk_length=8, num_batches=6, rng=2,
        )
        assert result.num_batches < 6
        assert result.num_walks < result.eta_star

    def test_batches_double(self, dense_graph):
        n = dense_graph.num_nodes
        result = amc_estimate(
            dense_graph, 0, 1, one_hot(n, 0), one_hot(n, 1),
            epsilon=0.01, walk_length=4, num_batches=4, rng=3,
            max_total_steps=200_000,
        )
        for previous, current in zip(result.batch_sizes, result.batch_sizes[1:]):
            assert current == 2 * previous

    def test_step_budget_flag(self, dense_graph):
        n = dense_graph.num_nodes
        result = amc_estimate(
            dense_graph, 0, 1, one_hot(n, 0), one_hot(n, 1),
            epsilon=0.005, walk_length=10, num_batches=3, rng=4,
            max_total_steps=100,
        )
        assert result.budget_exhausted

    def test_negative_vector_rejected(self, dense_graph):
        n = dense_graph.num_nodes
        bad = one_hot(n, 0)
        bad[3] = -0.5
        with pytest.raises(ValueError):
            amc_estimate(dense_graph, 0, 1, bad, one_hot(n, 1), epsilon=0.1, walk_length=3)

    def test_wrong_shape_rejected(self, dense_graph):
        with pytest.raises(ValueError):
            amc_estimate(
                dense_graph, 0, 1, np.zeros(3), np.zeros(3), epsilon=0.1, walk_length=3
            )

    def test_smoothed_vectors_need_fewer_walks(self, dense_graph):
        """GEER's key effect: SMM-propagated vectors shrink ψ and hence η*."""
        s, t = 6, 120
        n = dense_graph.num_nodes
        state = SMMState(dense_graph, s, t)
        state.run(3)
        one_hot_result = amc_estimate(
            dense_graph, s, t, one_hot(n, s), one_hot(n, t),
            epsilon=0.1, walk_length=8, rng=7,
        )
        smoothed_result = amc_estimate(
            dense_graph, s, t, state.s_vector(), state.t_vector(),
            epsilon=0.1, walk_length=8, rng=7,
        )
        assert smoothed_result.psi < one_hot_result.psi
        assert smoothed_result.eta_star < one_hot_result.eta_star


class TestAMCQuery:
    def test_within_epsilon_of_truth(self, dense_graph, dense_lambda):
        from repro.baselines.ground_truth import GroundTruthOracle

        oracle = GroundTruthOracle(dense_graph)
        rng = np.random.default_rng(9)
        epsilon = 0.1
        for _ in range(8):
            s, t = rng.choice(dense_graph.num_nodes, size=2, replace=False)
            result = amc_query(
                dense_graph, int(s), int(t),
                epsilon=epsilon, lambda_max_abs=dense_lambda, rng=rng,
            )
            assert abs(result.value - oracle.query(int(s), int(t))) <= epsilon

    def test_same_node_zero(self, dense_graph, dense_lambda):
        result = amc_query(dense_graph, 5, 5, epsilon=0.1, lambda_max_abs=dense_lambda)
        assert result.value == 0.0
        assert result.num_walks == 0

    def test_uses_refined_length(self, dense_graph, dense_lambda):
        s, t = 0, 30
        result = amc_query(
            dense_graph, s, t, epsilon=0.2, lambda_max_abs=dense_lambda, rng=1
        )
        expected = refined_walk_length(
            0.2, dense_lambda, dense_graph.degree(s), dense_graph.degree(t)
        )
        assert result.walk_length == expected

    def test_shared_engine_accumulates_steps(self, dense_graph, dense_lambda):
        engine = RandomWalkEngine(dense_graph, rng=3)
        amc_query(dense_graph, 0, 9, epsilon=0.3, lambda_max_abs=dense_lambda, engine=engine)
        first = engine.total_steps
        amc_query(dense_graph, 1, 8, epsilon=0.3, lambda_max_abs=dense_lambda, engine=engine)
        assert engine.total_steps > first

    def test_complete_graph_value(self):
        graph = complete_graph(30)
        lam = spectral_radius_second(graph)
        result = amc_query(graph, 0, 1, epsilon=0.05, lambda_max_abs=lam, rng=2)
        assert result.value == pytest.approx(2 / 30, abs=0.05)

    def test_result_details(self, dense_graph, dense_lambda):
        result = amc_query(dense_graph, 0, 40, epsilon=0.2, lambda_max_abs=dense_lambda, rng=4)
        assert result.method == "amc"
        assert "psi" in result.details and "eta_star" in result.details
        assert result.details["empirical_error"] >= 0.0
