"""Unit tests for the QueryPlan / BatchResult batch execution layer."""

import numpy as np
import pytest

from repro.core.batch import QueryPlan
from repro.core.engine import QueryEngine
from repro.core.registry import QueryContext
from repro.core.walk_length import refined_walk_length
from repro.experiments.queries import random_query_set
from repro.graph.generators import barabasi_albert_graph


@pytest.fixture(scope="module")
def graph():
    # BA graphs have a heavy-tailed degree distribution, so a random pair set
    # is genuinely mixed-degree.
    return barabasi_albert_graph(300, 5, rng=11)


@pytest.fixture(scope="module")
def pairs(graph):
    return list(random_query_set(graph, 120, rng=3))


class TestPlanning:
    def test_buckets_cover_all_pairs_once(self, graph, pairs):
        plan = QueryPlan(QueryContext(graph, rng=0), pairs, 0.5, method="geer")
        covered = sorted(i for bucket in plan.buckets for i in bucket.indices)
        assert covered == list(range(len(pairs)))

    def test_walk_length_computed_once_per_degree_bucket(self, graph, pairs):
        context = QueryContext(graph, rng=0)
        plan = QueryPlan(context, pairs, 0.5, method="geer")
        degree_keys = {
            tuple(sorted((int(graph.degrees[s]), int(graph.degrees[t]))))
            for s, t in pairs
        }
        assert plan.num_buckets == len(degree_keys)
        assert plan.walk_length_computations == plan.num_buckets
        assert plan.walk_length_computations < len(pairs)

    def test_bucket_lengths_match_refined_bound(self, graph, pairs):
        context = QueryContext(graph, rng=0)
        plan = QueryPlan(context, pairs, 0.5, method="geer")
        for bucket in plan.buckets:
            d_lo, d_hi = bucket.key
            assert bucket.walk_length == refined_walk_length(
                0.5, context.lambda_max_abs, d_lo, d_hi
            )

    def test_log2_bucketing_is_coarser_and_conservative(self, graph, pairs):
        context = QueryContext(graph, rng=0)
        exact_plan = QueryPlan(context, pairs, 0.5, method="geer", bucketing="degree")
        coarse_plan = QueryPlan(context, pairs, 0.5, method="geer", bucketing="log2")
        assert coarse_plan.num_buckets <= exact_plan.num_buckets
        exact_lengths = exact_plan._lengths
        coarse_lengths = coarse_plan._lengths
        for exact_len, coarse_len in zip(exact_lengths, coarse_lengths):
            assert coarse_len >= exact_len

    def test_peng_methods_collapse_to_one_bucket(self, graph, pairs):
        plan = QueryPlan(QueryContext(graph, rng=0), pairs, 0.5, method="tp")
        assert plan.num_buckets == 1
        assert plan.walk_length_computations == 1

    def test_methods_without_walk_length_have_zero_computations(self, graph, pairs):
        plan = QueryPlan(QueryContext(graph, rng=0), pairs, 0.5, method="ground-truth")
        assert plan.num_buckets == 1
        assert plan.walk_length_computations == 0

    def test_unknown_bucketing_rejected(self, graph, pairs):
        with pytest.raises(ValueError, match="bucketing"):
            QueryPlan(QueryContext(graph, rng=0), pairs, 0.5, bucketing="nope")

    def test_edge_method_rejects_non_edges(self, graph):
        context = QueryContext(graph, rng=0)
        non_edge = None
        for u in range(graph.num_nodes):
            for v in range(u + 1, graph.num_nodes):
                if not graph.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        with pytest.raises(ValueError, match="edge"):
            QueryPlan(context, [non_edge], 0.5, method="mc2")


class TestMalformedPairs:
    def test_float_pair_rejected(self, graph):
        context = QueryContext(graph, rng=0)
        with pytest.raises(ValueError, match="pair #0"):
            QueryPlan(context, [(0.5, 3)], 0.5)

    def test_numpy_float_scalar_rejected(self, graph):
        context = QueryContext(graph, rng=0)
        with pytest.raises(ValueError, match="pair #1"):
            QueryPlan(context, [(0, 1), (np.float64(2.5), 3)], 0.5)

    def test_string_pair_rejected(self, graph):
        context = QueryContext(graph, rng=0)
        with pytest.raises(ValueError, match="pair #0"):
            QueryPlan(context, [("a", "b")], 0.5)

    def test_out_of_range_rejected(self, graph):
        context = QueryContext(graph, rng=0)
        with pytest.raises(ValueError, match="out of range"):
            QueryPlan(context, [(0, graph.num_nodes)], 0.5)

    def test_wrong_arity_rejected(self, graph):
        context = QueryContext(graph, rng=0)
        with pytest.raises(ValueError, match="unpack"):
            QueryPlan(context, [(0, 1, 2)], 0.5)

    def test_numpy_integer_scalars_accepted(self, graph):
        context = QueryContext(graph, rng=0)
        plan = QueryPlan(context, [(np.int64(0), np.int32(1))], 0.5)
        assert plan.pairs == [(0, 1)]


class TestExecutionIdentity:
    """A plan produces the same values as a per-pair loop under the same seed."""

    def test_geer_batch_matches_per_pair_loop(self, graph, pairs):
        loop_engine = QueryEngine(graph, rng=7)
        loop_values = np.array(
            [loop_engine.query(s, t, 0.5, method="geer").value for s, t in pairs]
        )
        batch_engine = QueryEngine(graph, rng=7)
        batch = batch_engine.query_many(pairs, 0.5, method="geer")
        assert len(batch) == len(pairs) >= 100
        assert np.array_equal(loop_values, batch.values)

    def test_amc_batch_matches_per_pair_loop(self, graph, pairs):
        subset = pairs[:30]
        loop_engine = QueryEngine(graph, rng=9)
        loop_values = np.array(
            [loop_engine.query(s, t, 0.5, method="amc").value for s, t in subset]
        )
        batch_engine = QueryEngine(graph, rng=9)
        batch = batch_engine.query_many(subset, 0.5, method="amc")
        assert np.array_equal(loop_values, batch.values)

    def test_vectorized_smm_matches_per_pair_loop(self, graph, pairs):
        subset = pairs[:40]
        loop_engine = QueryEngine(graph, rng=1)
        loop_values = np.array(
            [loop_engine.query(s, t, 0.4, method="smm").value for s, t in subset]
        )
        batch = QueryEngine(graph, rng=1).query_many(subset, 0.4, method="smm")
        assert any(r.details.get("vectorized") for r in batch)
        np.testing.assert_allclose(batch.values, loop_values, atol=1e-12)

    def test_scalar_smm_path_matches_vectorized(self, graph, pairs):
        subset = pairs[:20]
        engine = QueryEngine(graph, rng=1)
        vec = engine.plan(subset, 0.4, method="smm").execute(vectorize=True)
        scalar = engine.plan(subset, 0.4, method="smm").execute(vectorize=False)
        np.testing.assert_allclose(vec.values, scalar.values, atol=1e-12)

    def test_log2_bucketing_keeps_guarantee(self, graph, pairs):
        engine = QueryEngine(graph, rng=5)
        subset = pairs[:30]
        batch = engine.query_many(subset, 0.5, method="smm", bucketing="log2")
        for (s, t), value in zip(subset, batch.values):
            assert abs(value - engine.exact(s, t)) <= 0.5


class TestBatchResult:
    def test_aggregates_consistent(self, graph, pairs):
        batch = QueryEngine(graph, rng=2).query_many(pairs[:25], 0.5, method="geer")
        assert batch.total_steps == sum(r.total_steps for r in batch)
        assert batch.spmv_operations == sum(r.spmv_operations for r in batch)
        assert batch.work == batch.total_steps + batch.spmv_operations
        assert batch.elapsed_seconds > 0
        assert batch[0].method == "geer"
        assert batch.pairs == [tuple(p) for p in pairs[:25]]

    def test_summary_row(self, graph, pairs):
        batch = QueryEngine(graph, rng=2).query_many(pairs[:10], 0.5, method="smm")
        row = batch.summary()
        assert row["pairs"] == 10
        assert row["method"] == "smm"
        assert row["buckets"] == batch.num_buckets

    def test_values_within_epsilon(self, graph, pairs):
        engine = QueryEngine(graph, rng=6)
        subset = pairs[:20]
        batch = engine.query_many(subset, 0.4, method="geer")
        for (s, t), value in zip(subset, batch.values):
            assert abs(value - engine.exact(s, t)) <= 0.4


class TestEstimateManyValidation:
    """estimate_many routes through check_node_pair instead of int() coercion."""

    def test_malformed_float_pair_raises(self, graph):
        from repro.core.estimator import EffectiveResistanceEstimator

        estimator = EffectiveResistanceEstimator(graph, rng=0)
        with pytest.raises(ValueError, match="pair #0"):
            estimator.estimate_many([(3.7, 5)], 0.5)

    def test_malformed_numpy_scalar_raises(self, graph):
        from repro.core.estimator import EffectiveResistanceEstimator

        estimator = EffectiveResistanceEstimator(graph, rng=0)
        with pytest.raises(ValueError, match="integer node id"):
            estimator.estimate_many([(np.float32(2.0), 5)], 0.5)

    def test_string_pair_raises(self, graph):
        from repro.core.estimator import EffectiveResistanceEstimator

        estimator = EffectiveResistanceEstimator(graph, rng=0)
        with pytest.raises(ValueError, match="pair #1"):
            estimator.estimate_many([(0, 1), ("3", "5")], 0.5)

    def test_valid_numpy_pairs_accepted(self, graph):
        from repro.core.estimator import EffectiveResistanceEstimator

        estimator = EffectiveResistanceEstimator(graph, rng=0)
        pairs = np.array([[0, 50], [1, 60]], dtype=np.int64)
        results = estimator.estimate_many(pairs, 0.5, method="smm")
        assert len(results) == 2
        assert all(r.method == "smm" for r in results)
