"""Dependency-tracked artifact cells and epoch-versioned contexts.

Covers the incremental-maintenance half of the delta ≡ rebuild contract at
the artifact level (patched transition matrix / degree arrays / alias tables
/ engine are bitwise what a cold context on the post-delta graph builds) plus
the epoch plumbing: plan pinning, refresh policies, lineage.
"""

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.core.registry import REFRESH_POLICIES, QueryBudget, QueryContext
from repro.exceptions import StaleEpochError
from repro.graph import (
    EdgeDelta,
    barabasi_albert_graph,
    graph_fingerprint,
    with_random_weights,
)
from repro.sampling.walks import _build_alias_tables


@pytest.fixture(params=[False, True], ids=["unweighted", "weighted"])
def graph(request):
    base = barabasi_albert_graph(80, 3, rng=11)
    return with_random_weights(base, rng=13) if request.param else base


@pytest.fixture()
def delta(graph):
    edges = [tuple(map(int, e)) for e in graph.edge_array()]
    inserts = [(70, 79, 2.0)] if graph.is_weighted else [(70, 79)]
    reweights = [edges[12] + (0.4,)] if graph.is_weighted else []
    return EdgeDelta(inserts=inserts, removals=[edges[5]], reweights=reweights)


class TestArtifactCells:
    def test_status_starts_empty_and_fills_lazily(self, graph):
        context = QueryContext(graph)
        assert set(context.artifact_status().values()) == {"empty"}
        context.transition
        context.degrees_float
        status = context.artifact_status()
        assert status["transition"] == "ready"
        assert status["degrees_float"] == "ready"
        assert status["spectral"] == "empty"

    def test_invalidate_drops_a_cell(self, graph):
        context = QueryContext(graph)
        context.transition
        context.invalidate("transition")
        assert context.artifact_status()["transition"] == "empty"

    def test_invalidate_spectral_clears_injected_lambda(self, graph):
        context = QueryContext(graph, lambda_max_abs=0.9)
        assert context._lambda == 0.9
        context.invalidate("spectral")
        assert context._lambda is None

    def test_injected_artifacts_prepopulate_cells(self, graph):
        transition = graph.transition_matrix()
        context = QueryContext(graph, transition=transition)
        assert context.artifact_status()["transition"] == "ready"
        assert context.transition is transition


class TestApplyDelta:
    def test_epoch_and_lineage_advance(self, graph, delta):
        context = QueryContext(graph)
        base_lineage = context.lineage
        assert base_lineage == graph_fingerprint(graph)
        new_epoch = context.apply_delta(delta)
        assert new_epoch == context.epoch == 1
        assert context.lineage == delta.chain(base_lineage)

    def test_graph_matches_cold_apply(self, graph, delta):
        context = QueryContext(graph)
        context.apply_delta(delta)
        assert context.graph == delta.apply_to(graph)

    def test_cheap_cells_patched_expensive_dropped(self, graph, delta):
        context = QueryContext(graph)
        context.lambda_max_abs
        context.transition
        context.degrees_float
        context.engine
        context.solver
        context.apply_delta(delta)
        status = context.artifact_status()
        assert status["transition"] == "ready"
        assert status["degrees_float"] == "ready"
        assert status["engine"] == "ready"
        assert status["spectral"] == "empty"
        assert status["solver"] == "empty"

    def test_patched_artifacts_bitwise_equal_cold(self, graph, delta):
        warm = QueryContext(graph)
        warm.transition
        warm.degrees_float
        warm.engine  # builds alias tables on weighted graphs
        warm.apply_delta(delta)
        cold = QueryContext(delta.apply_to(graph))
        assert np.array_equal(warm.degrees_float, cold.degrees_float)
        assert np.array_equal(warm.transition.data, cold.transition.data)
        assert np.array_equal(warm.transition.indices, cold.transition.indices)
        assert np.array_equal(warm.transition.indptr, cold.transition.indptr)
        if graph.is_weighted:
            patched = warm.graph._alias_cache
            assert patched is not None
            prob, alias = _build_alias_tables(cold.graph)
            assert np.array_equal(patched[0], prob)
            assert np.array_equal(patched[1], alias)

    def test_engine_patch_preserves_stream_and_steps(self, graph, delta):
        context = QueryContext(graph, rng=5)
        engine = context.engine
        engine.walk_endpoints(0, 4, 3)
        steps = engine.total_steps
        state = context.rng.bit_generator.state
        context.apply_delta(delta)
        patched = context.engine
        assert patched is not engine
        assert patched.total_steps == steps
        assert patched.rng is context.rng
        assert context.rng.bit_generator.state == state

    def test_apply_delta_never_consumes_session_stream(self, graph, delta):
        context = QueryContext(graph, rng=3)
        before = context.rng.bit_generator.state
        context.apply_delta(delta)
        assert context.rng.bit_generator.state == before

    def test_refresh_policies(self, graph, delta):
        with pytest.raises(ValueError, match="refresh"):
            QueryContext(graph).apply_delta(delta, refresh="sometimes")

        lazy = QueryContext(graph)
        lazy.lambda_max_abs
        lazy.apply_delta(delta, refresh="on-next-read")
        assert lazy.artifact_status()["spectral"] == "empty"

        eager = QueryContext(graph)
        eager.lambda_max_abs
        eager.apply_delta(delta, refresh="eager")
        assert eager.artifact_status()["spectral"] == "ready"

        small_budget = QueryBudget(spectral_refresh_nodes=graph.num_nodes - 1)
        budgeted = QueryContext(graph, budget=small_budget)
        budgeted.lambda_max_abs
        budgeted.apply_delta(delta, refresh="budgeted")
        assert budgeted.artifact_status()["spectral"] == "empty"

        big_budget = QueryBudget(spectral_refresh_nodes=graph.num_nodes)
        budgeted2 = QueryContext(graph, budget=big_budget)
        budgeted2.lambda_max_abs
        budgeted2.apply_delta(delta, refresh="budgeted")
        assert budgeted2.artifact_status()["spectral"] == "ready"

    def test_refreshed_spectral_matches_cold(self, graph, delta):
        warm = QueryContext(graph)
        warm.lambda_max_abs
        warm.apply_delta(delta)
        cold = QueryContext(delta.apply_to(graph))
        assert warm.lambda_max_abs == cold.lambda_max_abs
        assert warm.spectral_info == cold.spectral_info

    def test_disconnecting_delta_raises_when_validated(self):
        from repro.exceptions import GraphStructureError
        from repro.graph import from_edges

        # triangle + pendant node: removing (2, 3) isolates node 3
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        delta = EdgeDelta(removals=[(2, 3)])
        strict = QueryContext(from_edges(edges), validate=True)
        with pytest.raises(GraphStructureError):
            strict.apply_delta(delta)
        # the unvalidated context accepts it (parity with cold validate=False)
        loose = QueryContext(from_edges(edges), validate=False)
        loose.apply_delta(delta)
        assert loose.epoch == 1


class TestEnginePlumbing:
    def test_engine_apply_update_and_epoch(self, graph, delta):
        engine = QueryEngine(graph, rng=1)
        assert engine.epoch == 0
        assert engine.apply_update(delta) == 1
        assert engine.epoch == 1

    def test_stale_plan_refuses_to_execute(self, graph, delta):
        engine = QueryEngine(graph, rng=1)
        plan = engine.plan([(0, 1), (2, 3)], epsilon=0.5)
        engine.apply_update(delta)
        with pytest.raises(StaleEpochError, match="epoch 0"):
            plan.execute()

    def test_fresh_plan_executes_after_update(self, graph, delta):
        engine = QueryEngine(graph, rng=1)
        engine.apply_update(delta)
        batch = engine.query_many([(0, 1)], epsilon=0.5, method="smm")
        assert len(batch) == 1

    def test_refresh_policy_names_are_closed(self):
        assert REFRESH_POLICIES == ("eager", "on-next-read", "budgeted")
