"""Tests for QueryEngine result hooks and session-stats summaries."""

import pytest

from repro.core.engine import QueryEngine, SessionStats
from repro.graph.generators import barabasi_albert_graph


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 3, rng=1)


class TestResultHooks:
    def test_hook_sees_single_queries(self, graph):
        engine = QueryEngine(graph, rng=1)
        seen = []
        engine.add_result_hook(seen.append)
        result = engine.query(0, 50, 0.2)
        assert seen == [result]

    def test_hook_sees_every_batch_result(self, graph):
        engine = QueryEngine(graph, rng=1)
        seen = []
        engine.add_result_hook(seen.append)
        batch = engine.query_many([(0, 50), (3, 77)], 0.2, method="smm")
        assert seen == list(batch)

    def test_hooks_run_in_registration_order(self, graph):
        engine = QueryEngine(graph, rng=1)
        calls = []
        engine.add_result_hook(lambda r: calls.append("a"))
        engine.add_result_hook(lambda r: calls.append("b"))
        engine.query(0, 50, 0.2)
        assert calls == ["a", "b"]

    def test_remove_hook(self, graph):
        engine = QueryEngine(graph, rng=1)
        seen = []
        engine.add_result_hook(seen.append)
        engine.remove_result_hook(seen.append)
        engine.remove_result_hook(seen.append)  # absent: no-op
        engine.query(0, 50, 0.2)
        assert seen == []

    def test_hooks_fire_after_stats_recorded(self, graph):
        engine = QueryEngine(graph, rng=1)
        counts = []
        engine.add_result_hook(lambda r: counts.append(engine.stats.num_queries))
        engine.query(0, 50, 0.2)
        assert counts == [1]


class TestSessionStatsSummary:
    def test_empty_session(self):
        summary = SessionStats().summary()
        assert summary["queries"] == 0
        assert summary["steps_per_query"] == 0.0

    def test_summary_tracks_recorded_work(self, graph):
        engine = QueryEngine(graph, rng=1)
        engine.query(0, 50, 0.2)
        engine.query(3, 77, 0.2)
        summary = engine.stats.summary()
        assert summary["queries"] == 2
        assert summary["walk_steps"] == engine.stats.total_steps
        assert summary["steps_per_query"] == pytest.approx(
            engine.stats.total_steps / 2, abs=0.1
        )

    def test_export_preprocessing_round_trips_through_context(self, graph):
        engine = QueryEngine(graph, rng=1)
        state = engine.export_preprocessing()
        assert state["lambda_max_abs"] == engine.lambda_max_abs
        assert set(state) == {
            "delta",
            "num_batches",
            "lambda_2",
            "lambda_n",
            "lambda_max_abs",
        }
