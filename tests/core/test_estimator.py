"""Unit tests for the EffectiveResistanceEstimator façade."""

import numpy as np
import pytest

from repro.core.estimator import EffectiveResistanceEstimator
from repro.core.walk_length import peng_walk_length, refined_walk_length
from repro.exceptions import GraphStructureError
from repro.graph.builders import from_edges
from repro.graph.generators import barabasi_albert_graph, path_graph
from repro.linalg.eigen import spectral_radius_second


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(250, 7, rng=51)


@pytest.fixture(scope="module")
def estimator(graph):
    return EffectiveResistanceEstimator(graph, rng=51)


class TestConstruction:
    def test_rejects_bipartite(self):
        with pytest.raises(GraphStructureError):
            EffectiveResistanceEstimator(path_graph(5))

    def test_rejects_disconnected(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        with pytest.raises(GraphStructureError):
            EffectiveResistanceEstimator(graph)

    def test_validation_can_be_disabled(self):
        graph = path_graph(5)
        estimator = EffectiveResistanceEstimator(graph, validate=False, lambda_max_abs=0.9)
        assert estimator.graph is graph

    def test_lambda_lazy_and_cached(self, graph):
        estimator = EffectiveResistanceEstimator(graph, rng=1)
        assert estimator._lambda is None
        lam = estimator.lambda_max_abs
        assert estimator._lambda == lam
        assert lam == pytest.approx(spectral_radius_second(graph), abs=1e-6)

    def test_lambda_override_used(self, graph):
        estimator = EffectiveResistanceEstimator(graph, lambda_max_abs=0.77)
        assert estimator.lambda_max_abs == 0.77

    def test_repr(self, estimator):
        assert "EffectiveResistanceEstimator" in repr(estimator)


class TestQueries:
    def test_all_methods_within_epsilon(self, estimator):
        epsilon = 0.1
        truth = estimator.exact(4, 123)
        for method in ("geer", "amc", "smm"):
            result = estimator.estimate(4, 123, epsilon, method=method)
            assert abs(result.value - truth) <= epsilon
            assert result.epsilon == epsilon

    def test_unknown_method(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate(0, 1, 0.1, method="magic")

    def test_invalid_nodes(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate(0, 10_000, 0.1)

    def test_invalid_epsilon(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate(0, 1, -0.5)

    def test_estimate_many(self, estimator):
        pairs = [(0, 10), (5, 20), (7, 7)]
        results = estimator.estimate_many(pairs, 0.2)
        assert len(results) == 3
        assert results[2].value == 0.0

    def test_walk_length_helper(self, estimator, graph):
        s, t = 0, 99
        refined = estimator.walk_length(s, t, 0.1)
        generic = estimator.walk_length(s, t, 0.1, refined=False)
        assert refined == refined_walk_length(
            0.1, estimator.lambda_max_abs, graph.degree(s), graph.degree(t)
        )
        assert generic == peng_walk_length(0.1, estimator.lambda_max_abs)
        assert refined <= generic

    def test_smm_iteration_override(self, estimator):
        result = estimator.estimate(3, 60, 0.5, method="smm", num_iterations=2)
        assert result.smm_iterations == 2

    def test_exact_matches_solver(self, estimator, graph):
        from repro.linalg.solvers import LaplacianSolver

        solver = LaplacianSolver(graph)
        assert estimator.exact(9, 44) == pytest.approx(
            solver.effective_resistance(9, 44), abs=1e-8
        )

    def test_reproducible_with_seed(self, graph):
        a = EffectiveResistanceEstimator(graph, rng=99).estimate(0, 50, 0.1, method="amc")
        b = EffectiveResistanceEstimator(graph, rng=99).estimate(0, 50, 0.1, method="amc")
        assert a.value == pytest.approx(b.value)

    def test_float_conversion_of_result(self, estimator):
        result = estimator.estimate(0, 1, 0.5)
        assert float(result) == result.value
