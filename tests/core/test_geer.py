"""Unit tests for GEER (Algorithm 3)."""

import numpy as np
import pytest

from repro.baselines.ground_truth import GroundTruthOracle
from repro.core.geer import geer_query
from repro.core.walk_length import refined_walk_length
from repro.graph.generators import barabasi_albert_graph, complete_graph
from repro.linalg.eigen import spectral_radius_second


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(300, 8, rng=41)


@pytest.fixture(scope="module")
def lam(graph):
    return spectral_radius_second(graph)


@pytest.fixture(scope="module")
def oracle(graph):
    return GroundTruthOracle(graph)


class TestGEERAccuracy:
    def test_within_epsilon(self, graph, lam, oracle):
        rng = np.random.default_rng(5)
        for epsilon in (0.2, 0.05):
            for _ in range(6):
                s, t = rng.choice(graph.num_nodes, size=2, replace=False)
                result = geer_query(
                    graph, int(s), int(t), epsilon=epsilon, lambda_max_abs=lam, rng=rng
                )
                assert abs(result.value - oracle.query(int(s), int(t))) <= epsilon

    def test_same_node(self, graph, lam):
        assert geer_query(graph, 3, 3, epsilon=0.1, lambda_max_abs=lam).value == 0.0

    def test_complete_graph(self):
        graph = complete_graph(20)
        lam = spectral_radius_second(graph)
        result = geer_query(graph, 0, 7, epsilon=0.05, lambda_max_abs=lam, rng=1)
        assert result.value == pytest.approx(0.1, abs=0.05)

    def test_edge_query_accuracy(self, graph, lam, oracle):
        u, v = next(iter(graph.edges()))
        result = geer_query(graph, u, v, epsilon=0.05, lambda_max_abs=lam, rng=2)
        assert abs(result.value - oracle.query(u, v)) <= 0.05


class TestGEERMechanics:
    def test_head_tail_decomposition(self, graph, lam):
        result = geer_query(graph, 2, 77, epsilon=0.1, lambda_max_abs=lam, rng=3)
        assert result.value == pytest.approx(
            result.details["smm_value"] + result.details["amc_value"], abs=1e-12
        )
        assert 0 <= result.smm_iterations <= result.walk_length

    def test_forced_switch_point_zero_behaves_like_amc(self, graph, lam, oracle):
        s, t = 5, 150
        result = geer_query(
            graph, s, t, epsilon=0.1, lambda_max_abs=lam, rng=4, force_smm_iterations=0
        )
        assert result.smm_iterations == 0
        # with l_b = 0 the SMM head contributes only the i=0 term
        expected_head = 1 / graph.degree(s) + 1 / graph.degree(t)
        assert result.details["smm_value"] == pytest.approx(expected_head)
        assert abs(result.value - oracle.query(s, t)) <= 0.1

    def test_forced_switch_point_full_is_deterministic(self, graph, lam, oracle):
        s, t = 8, 190
        epsilon = 0.1
        length = refined_walk_length(epsilon, lam, graph.degree(s), graph.degree(t))
        result = geer_query(
            graph, s, t, epsilon=epsilon, lambda_max_abs=lam,
            force_smm_iterations=length, rng=5,
        )
        assert result.smm_iterations == length
        assert result.num_walks == 0  # no tail left for AMC
        assert abs(result.value - oracle.query(s, t)) <= epsilon / 2 + 1e-9

    def test_forced_switch_point_capped_at_length(self, graph, lam):
        result = geer_query(
            graph, 0, 10, epsilon=0.2, lambda_max_abs=lam, force_smm_iterations=10_000
        )
        assert result.smm_iterations <= result.walk_length

    def test_greedy_switch_point_recorded(self, graph, lam):
        result = geer_query(graph, 1, 201, epsilon=0.1, lambda_max_abs=lam, rng=6)
        assert result.details["switch_point"] == result.smm_iterations

    def test_walk_length_override(self, graph, lam):
        result = geer_query(
            graph, 0, 99, epsilon=0.1, lambda_max_abs=lam, walk_length=3, rng=7
        )
        assert result.walk_length == 3

    def test_geer_uses_fewer_walks_than_amc(self, graph, lam):
        """The headline effect: the SMM head slashes the AMC sampling budget."""
        from repro.core.amc import amc_query

        s, t = 12, 250
        epsilon = 0.05
        amc_result = amc_query(graph, s, t, epsilon=epsilon, lambda_max_abs=lam, rng=8)
        geer_result = geer_query(graph, s, t, epsilon=epsilon, lambda_max_abs=lam, rng=8)
        assert geer_result.num_walks < amc_result.num_walks

    def test_invalid_epsilon(self, graph, lam):
        with pytest.raises(ValueError):
            geer_query(graph, 0, 1, epsilon=0.0, lambda_max_abs=lam)

    def test_result_metadata(self, graph, lam):
        result = geer_query(graph, 0, 55, epsilon=0.1, lambda_max_abs=lam, rng=9)
        assert result.method == "geer"
        assert result.spmv_operations >= 0
        assert result.elapsed_seconds > 0
        assert result.work == result.total_steps + result.spmv_operations
