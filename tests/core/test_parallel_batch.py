"""Tests of parallel QueryPlan execution (workers > 1) and its contracts.

Two determinism contracts (DESIGN.md):

* ``workers=1`` replays the per-pair session stream bit-for-bit (covered
  extensively in test_batch.py; re-asserted here as the baseline);
* ``workers>1`` uses one derived stream per query, so results are identical
  for a fixed seed across reruns, worker counts and executor kinds — but are
  an independent (equally valid) sample from the sequential run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.core.estimator import EffectiveResistanceEstimator
from repro.core.registry import QueryContext
from repro.experiments.queries import random_query_set
from repro.graph.generators import barabasi_albert_graph
from repro.service.coalesce import RequestCoalescer


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(300, 5, rng=11)


@pytest.fixture(scope="module")
def pairs(graph):
    return list(random_query_set(graph, 24, rng=3))


EPSILON = 0.4


class TestSequentialBaseline:
    def test_workers_one_matches_per_pair_loop(self, graph, pairs):
        batched = QueryEngine(graph, rng=7).query_many(pairs, EPSILON, method="geer")
        looped = QueryEngine(graph, rng=7)
        expected = [looped.query(s, t, EPSILON, method="geer").value for s, t in pairs]
        assert np.array_equal(batched.values, expected)
        assert batched.workers == 1
        assert batched.executor == "serial"


class TestParallelDeterminism:
    @pytest.mark.parametrize("method", ["geer", "amc", "mc"])
    def test_fixed_seed_reproducible(self, graph, pairs, method):
        first = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method=method, workers=2, executor="thread"
        )
        second = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method=method, workers=2, executor="thread"
        )
        assert np.array_equal(first.values, second.values)
        assert first.workers == 2
        assert first.executor == "thread"

    @pytest.mark.parametrize("method", ["geer", "amc"])
    def test_independent_of_worker_count(self, graph, pairs, method):
        two = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method=method, workers=2, executor="thread"
        )
        four = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method=method, workers=4, executor="thread"
        )
        assert np.array_equal(two.values, four.values)

    def test_process_pool_matches_threads(self, graph, pairs):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        threads = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method="geer", workers=2, executor="thread"
        )
        processes = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method="geer", workers=2, executor="process"
        )
        assert np.array_equal(threads.values, processes.values)
        assert processes.executor == "process"

    def test_parallel_estimates_stay_within_epsilon(self, graph, pairs):
        engine = QueryEngine(graph, rng=7)
        batch = engine.query_many(
            pairs, EPSILON, method="geer", workers=3, executor="thread"
        )
        for result in batch:
            truth = engine.exact(result.s, result.t)
            assert abs(result.value - truth) <= EPSILON + 1e-9


class TestDeterministicMethodsInParallel:
    def test_smm_parallel_equals_serial(self, graph, pairs):
        serial = QueryEngine(graph, rng=7).query_many(pairs, EPSILON, method="smm")
        parallel = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method="smm", workers=3, executor="thread"
        )
        assert np.array_equal(serial.values, parallel.values)
        # the vectorized multi-column path is kept: chunk tasks, not per-pair
        assert any(r.details.get("vectorized") for r in parallel)

    def test_ground_truth_parallel_equals_serial(self, graph, pairs):
        serial = QueryEngine(graph, rng=7).query_many(
            pairs[:6], EPSILON, method="ground-truth"
        )
        parallel = QueryEngine(graph, rng=7).query_many(
            pairs[:6], EPSILON, method="ground-truth", workers=2, executor="thread"
        )
        assert np.allclose(serial.values, parallel.values, atol=0)

    def test_deterministic_parallel_batch_leaves_session_stream_untouched(
        self, graph, pairs
    ):
        # Methods without a parallel_seed consume nothing from the session
        # stream, so a randomised query after the parallel batch must match a
        # session that never ran it.
        s, t = pairs[0]
        engine = QueryEngine(graph, rng=7)
        engine.query_many(
            pairs[:5], EPSILON, method="ground-truth", workers=2, executor="thread"
        )
        after_parallel = engine.query(s, t, EPSILON, method="geer").value
        baseline = QueryEngine(graph, rng=7).query(s, t, EPSILON, method="geer").value
        assert after_parallel == baseline

    def test_rp_runs_on_threads_and_rejects_processes(self, graph, pairs):
        engine = QueryEngine(graph, rng=7)
        threaded = engine.query_many(
            pairs[:6], 0.8, method="rp", workers=2, executor="thread"
        )
        repeat = QueryEngine(graph, rng=7).query_many(
            pairs[:6], 0.8, method="rp", workers=3, executor="thread"
        )
        assert np.array_equal(threaded.values, repeat.values)
        with pytest.raises(ValueError, match="process pool"):
            QueryEngine(graph, rng=7).query_many(
                pairs[:6], 0.8, method="rp", workers=2, executor="process"
            )
        # auto resolves rp to threads instead of failing
        auto = QueryEngine(graph, rng=7).query_many(
            pairs[:6], 0.8, method="rp", workers=2
        )
        assert auto.executor == "thread"


class TestValidationAndPlumbing:
    def test_invalid_workers_rejected(self, graph, pairs):
        with pytest.raises(ValueError, match="workers"):
            QueryEngine(graph, rng=7).query_many(pairs, EPSILON, workers=0)

    def test_invalid_executor_rejected(self, graph, pairs):
        with pytest.raises(ValueError, match="executor"):
            QueryEngine(graph, rng=7).query_many(pairs, EPSILON, workers=2, executor="gpu")

    def test_explicit_engine_kwarg_conflicts_with_parallel(self, graph, pairs):
        engine = QueryEngine(graph, rng=7)
        with pytest.raises(ValueError, match="private random stream"):
            engine.query_many(
                pairs, EPSILON, method="amc", workers=2, executor="thread",
                engine=engine.context.engine,
            )

    def test_session_stats_and_hooks_see_parallel_results(self, graph, pairs):
        engine = QueryEngine(graph, rng=7)
        seen = []
        engine.add_result_hook(seen.append)
        batch = engine.query_many(
            pairs, EPSILON, method="geer", workers=2, executor="thread"
        )
        assert engine.stats.num_queries == len(pairs)
        assert len(seen) == len(pairs)
        assert engine.stats.total_steps == sum(r.total_steps for r in batch)

    def test_estimate_many_workers_routes_through_plan(self, graph, pairs):
        estimator = EffectiveResistanceEstimator(graph, rng=7)
        results = estimator.estimate_many(pairs, EPSILON, method="geer", workers=2)
        reference = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method="geer", workers=2, executor="auto"
        )
        assert np.array_equal([r.value for r in results], reference.values)

    def test_coalescer_flush_with_workers(self, graph, pairs):
        from repro.service.cache import canonical_pair

        engine = QueryEngine(graph, rng=7)
        coalescer = RequestCoalescer(
            engine, max_batch=100, max_delay_seconds=60.0, method="geer", workers=2
        )
        pending = [coalescer.submit(s, t, EPSILON) for s, t in pairs[:8]]
        values = [p.result().value for p in pending]
        # the coalescer executes canonicalised pairs; in parallel mode the
        # per-query streams are derived from (index, s, t), so the reference
        # must replay the same canonical batch
        reference = QueryEngine(graph, rng=7).query_many(
            [canonical_pair(s, t) for s, t in pairs[:8]],
            EPSILON,
            method="geer",
            workers=2,
        )
        assert np.array_equal(values, reference.values)

    def test_parallel_batch_summary_reports_workers(self, graph, pairs):
        batch = QueryEngine(graph, rng=7).query_many(
            pairs, EPSILON, method="geer", workers=2, executor="thread"
        )
        summary = batch.summary()
        assert summary["workers"] == 2
        assert summary["executor"] == "thread"
