"""Unit tests for the central method registry and the QueryContext."""

import numpy as np
import pytest

from repro.core.registry import (
    DuplicateMethodError,
    MethodSpec,
    QueryBudget,
    QueryContext,
    UnknownMethodError,
    available_methods,
    method_table,
    normalize_method_name,
    register_method,
    resolve_method,
    unregister_method,
)
from repro.graph.generators import barabasi_albert_graph, toy_running_example

ALL_METHODS = (
    "geer",
    "amc",
    "smm",
    "exact",
    "mc",
    "mc2",
    "tp",
    "tpc",
    "rp",
    "hay",
    "ground-truth",
)


@pytest.fixture(scope="module")
def toy():
    graph, s, t = toy_running_example()
    return graph, s, t


@pytest.fixture(scope="module")
def toy_context(toy):
    graph, _, _ = toy
    # Scaled-down TP/TPC budgets: the faithful Hoeffding constants are massively
    # conservative, so even at 2% the empirical error stays far below ε.
    budget = QueryBudget(
        tp_budget_scale=0.02,
        tpc_budget_scale=0.02,
        baseline_max_seconds=5.0,
        rp_max_dimension=5000,
    )
    return QueryContext(graph, rng=123, budget=budget)


class TestRegistry:
    def test_all_paper_methods_registered(self):
        names = available_methods()
        for method in ALL_METHODS:
            assert method in names
        assert "smm-peng" in names

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_resolve_returns_callable_spec(self, method):
        spec = resolve_method(method)
        assert isinstance(spec, MethodSpec)
        assert spec.name == method
        assert callable(spec)
        assert spec.description

    def test_name_normalisation(self):
        assert resolve_method("GEER").name == "geer"
        assert resolve_method("ground_truth").name == "ground-truth"
        assert normalize_method_name("  SMM_PENG ") == "smm-peng"

    def test_unknown_method_raises_keyerror_with_listing(self):
        with pytest.raises(UnknownMethodError) as excinfo:
            resolve_method("nope")
        assert "geer" in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_raises(self):
        with pytest.raises(DuplicateMethodError):
            register_method("geer", description="dup", func=lambda *a, **k: None)

    def test_register_and_unregister_custom_method(self, toy_context):
        def constant(context, s, t, epsilon, **kwargs):
            from repro.core.result import EstimateResult

            return EstimateResult(value=1.0, method="const", s=s, t=t, epsilon=epsilon)

        register_method("test-const", description="constant", func=constant)
        try:
            assert "test-const" in available_methods()
            result = resolve_method("test-const")(toy_context, 0, 1, 0.5)
            assert result.value == 1.0
        finally:
            unregister_method("test-const")
        assert "test-const" not in available_methods()

    def test_method_table_rows(self):
        rows = method_table()
        assert {row["method"] for row in rows} >= set(ALL_METHODS)
        for row in rows:
            assert row["description"]
            assert row["queries"] in ("pair", "edge")

    def test_edge_kinds(self):
        assert resolve_method("mc2").kind == "edge"
        assert resolve_method("hay").kind == "edge"
        assert resolve_method("geer").kind == "pair"

    def test_deterministic_flags(self):
        assert resolve_method("smm").deterministic
        assert resolve_method("exact").deterministic
        assert resolve_method("ground-truth").deterministic
        assert not resolve_method("geer").deterministic


class TestEpsilonGuarantees:
    """Every registered method answers the toy running example within ε."""

    EPSILON = 0.35

    def _truth(self, toy_context, s, t):
        return toy_context.ground_truth.query(s, t)

    @pytest.mark.parametrize(
        "method",
        ["geer", "amc", "smm", "smm-peng", "tp", "tpc", "rp", "exact", "mc", "ground-truth"],
    )
    def test_pair_methods_within_epsilon(self, toy, toy_context, method):
        _, s, t = toy
        truth = self._truth(toy_context, s, t)
        result = resolve_method(method)(toy_context, s, t, self.EPSILON)
        assert abs(result.value - truth) <= self.EPSILON
        assert result.s == s and result.t == t

    @pytest.mark.parametrize("method", ["mc2", "hay"])
    def test_edge_methods_within_epsilon(self, toy, toy_context, method):
        graph, s, _ = toy
        # s's first neighbour gives a guaranteed edge pair on the toy graph.
        u = int(graph.neighbors(s)[0])
        truth = self._truth(toy_context, s, u)
        result = resolve_method(method)(toy_context, s, u, self.EPSILON)
        assert abs(result.value - truth) <= self.EPSILON


class TestQueryContext:
    def test_lambda_lazy_and_cached(self):
        graph = barabasi_albert_graph(120, 4, rng=2)
        context = QueryContext(graph, rng=2)
        assert context._lambda is None
        lam = context.lambda_max_abs
        assert context._lambda == lam
        assert 0 < lam < 1

    def test_transition_and_engine_shared(self):
        graph = barabasi_albert_graph(120, 4, rng=2)
        context = QueryContext(graph, rng=2)
        assert context.transition is context.transition
        assert context.engine is context.engine

    def test_rp_sketch_cached_per_epsilon(self):
        graph = barabasi_albert_graph(120, 4, rng=2)
        context = QueryContext(graph, rng=2, budget=QueryBudget.laptop())
        assert context.rp_sketch(0.5) is context.rp_sketch(0.5)

    def test_rp_dimension_guard(self):
        from repro.exceptions import BudgetExceededError

        graph = barabasi_albert_graph(120, 4, rng=2)
        budget = QueryBudget(rp_jl_constant=24.0, rp_max_dimension=3)
        context = QueryContext(graph, rng=2, budget=budget)
        with pytest.raises(BudgetExceededError):
            context.rp_sketch(0.1)

    def test_walk_length_matches_refined_bound(self):
        from repro.core.walk_length import refined_walk_length

        graph = barabasi_albert_graph(120, 4, rng=2)
        context = QueryContext(graph, rng=2)
        expected = refined_walk_length(
            0.2,
            context.lambda_max_abs,
            int(graph.degrees[3]),
            int(graph.degrees[40]),
        )
        assert context.walk_length(3, 40, 0.2) == expected

    def test_budget_default_is_unbounded(self):
        graph = barabasi_albert_graph(120, 4, rng=2)
        context = QueryContext(graph, rng=2)
        assert context.budget.max_total_steps is None
        assert context.budget.mc_max_walks is None

    def test_laptop_profile(self):
        budget = QueryBudget.laptop()
        assert budget.max_total_steps == 20_000_000
        assert budget.rp_jl_constant == 4.0


class TestEngineDispatch:
    """The estimator façade accepts every registered method."""

    def test_estimator_accepts_baseline_methods(self):
        from repro.core.estimator import EffectiveResistanceEstimator

        graph = barabasi_albert_graph(150, 5, rng=4)
        estimator = EffectiveResistanceEstimator(graph, rng=4)
        truth = estimator.exact(0, 60)
        for method in ("rp", "exact", "ground-truth", "smm-peng"):
            result = estimator.estimate(0, 60, 0.3, method=method)
            assert abs(result.value - truth) <= 0.3

    def test_estimator_unknown_method_raises_valueerror(self):
        from repro.core.estimator import EffectiveResistanceEstimator

        graph = barabasi_albert_graph(150, 5, rng=4)
        estimator = EffectiveResistanceEstimator(graph, rng=4)
        with pytest.raises(ValueError, match="unknown method"):
            estimator.estimate(0, 1, 0.3, method="nope")

    def test_session_stats_accumulate(self):
        from repro.core.engine import QueryEngine

        graph = barabasi_albert_graph(150, 5, rng=4)
        engine = QueryEngine(graph, rng=4)
        engine.query(0, 60, 0.4)
        engine.query(1, 70, 0.4, method="smm")
        assert engine.stats.num_queries == 2
        assert engine.stats.elapsed_seconds > 0
