"""Unit tests for SMM (Algorithm 2)."""

import numpy as np
import pytest

from repro.baselines.ground_truth import GroundTruthOracle
from repro.core.smm import SMMState, smm_estimate
from repro.graph.generators import barabasi_albert_graph, complete_graph


class TestSMMState:
    def test_vectors_track_transition_powers(self, ba_small):
        s, t = 2, 9
        state = SMMState(ba_small, s, t)
        transition = ba_small.transition_matrix().toarray()
        e_s = np.zeros(ba_small.num_nodes)
        e_s[s] = 1.0
        for i in range(1, 4):
            state.step()
            expected = np.linalg.matrix_power(transition, i) @ e_s
            np.testing.assert_allclose(state.s_vector(), expected, atol=1e-12)

    def test_estimate_matches_truncated_series(self, ba_small):
        s, t = 4, 17
        length = 6
        state = SMMState(ba_small, s, t)
        state.run(length)
        transition = ba_small.transition_matrix().toarray()
        deg = ba_small.degrees.astype(float)
        expected = 0.0
        power = np.eye(ba_small.num_nodes)
        for _ in range(length + 1):
            expected += (
                power[s, s] / deg[s]
                + power[t, t] / deg[t]
                - power[s, t] / deg[t]
                - power[t, s] / deg[s]
            )
            power = power @ transition
        assert state.estimate == pytest.approx(expected, abs=1e-10)

    def test_spmv_cost_counts_frontier_degrees(self, ba_small):
        s, t = 0, 1
        state = SMMState(ba_small, s, t)
        first_cost = state.next_iteration_cost()
        assert first_cost == ba_small.degree(s) + ba_small.degree(t)
        state.step()
        assert state.spmv_operations == first_cost
        # the frontier has grown, so the next iteration costs more
        assert state.next_iteration_cost() >= first_cost

    def test_dense_switch_preserves_values(self, ba_small):
        s, t = 3, 8
        sparse_state = SMMState(ba_small, s, t, dense_switch_fraction=1.1)  # stay sparse
        dense_state = SMMState(ba_small, s, t, dense_switch_fraction=0.0)  # dense at once
        for _ in range(4):
            sparse_state.step()
            dense_state.step()
        assert sparse_state.estimate == pytest.approx(dense_state.estimate, abs=1e-12)
        np.testing.assert_allclose(
            sparse_state.s_vector(), dense_state.s_vector(), atol=1e-12
        )

    def test_iterations_counter(self, ba_small):
        state = SMMState(ba_small, 0, 5)
        state.run(3)
        assert state.iterations == 3

    def test_invalid_nodes(self, ba_small):
        with pytest.raises(ValueError):
            SMMState(ba_small, 0, ba_small.num_nodes)


class TestSMMEstimate:
    def test_converges_to_ground_truth(self, ba_small, ba_small_oracle):
        s, t = 11, 42
        result = smm_estimate(ba_small, s, t, 200)
        assert result.value == pytest.approx(ba_small_oracle.query(s, t), abs=1e-6)

    def test_complete_graph_exact_value(self):
        graph = complete_graph(12)
        result = smm_estimate(graph, 0, 5, 100)
        assert result.value == pytest.approx(2 / 12, abs=1e-8)

    def test_result_metadata(self, ba_small):
        result = smm_estimate(ba_small, 1, 2, 5)
        assert result.method == "smm"
        assert result.smm_iterations == 5
        assert result.num_walks == 0
        assert result.spmv_operations > 0
        assert result.elapsed_seconds >= 0.0

    def test_zero_iterations(self, ba_small):
        result = smm_estimate(ba_small, 1, 2, 0)
        deg = ba_small.degrees
        expected = 1 / deg[1] + 1 / deg[2] - 0.0
        if ba_small.has_edge(1, 2):
            pass  # p_0 terms do not involve adjacency
        assert result.value == pytest.approx(expected)

    def test_monotone_error_decay(self, ba_dense, ba_dense_oracle):
        s, t = 7, 200
        truth = ba_dense_oracle.query(s, t)
        errors = [
            abs(smm_estimate(ba_dense, s, t, iters).value - truth) for iters in (1, 4, 16)
        ]
        assert errors[2] <= errors[0] + 1e-12
        assert errors[2] < 1e-4

    def test_transition_reuse_gives_same_answer(self, ba_small):
        transition = ba_small.transition_matrix()
        a = smm_estimate(ba_small, 5, 6, 10)
        b = smm_estimate(ba_small, 5, 6, 10, transition=transition)
        assert a.value == pytest.approx(b.value, abs=1e-12)
