"""Unit tests for the maximum walk length bounds (Eq. (5) and Eq. (6))."""

import numpy as np
import pytest

from repro.baselines.ground_truth import GroundTruthOracle
from repro.core.smm import smm_estimate
from repro.core.walk_length import (
    peng_walk_length,
    refined_walk_length,
    truncation_error_bound,
)
from repro.graph.generators import barabasi_albert_graph
from repro.linalg.eigen import spectral_radius_second


class TestPengWalkLength:
    def test_monotone_in_epsilon(self):
        assert peng_walk_length(0.01, 0.8) > peng_walk_length(0.5, 0.8)

    def test_monotone_in_lambda(self):
        assert peng_walk_length(0.1, 0.95) > peng_walk_length(0.1, 0.5)

    def test_zero_lambda(self):
        assert peng_walk_length(0.1, 0.0) == 1

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            peng_walk_length(0.1, 1.0)
        with pytest.raises(ValueError):
            peng_walk_length(0.1, -0.1)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            peng_walk_length(0.0, 0.5)

    def test_formula_value(self):
        # hand-computed: eps=0.2, lam=0.5 -> ln(4/(0.2*0.5)) / ln 2 - 1 = ln(40)/ln2 - 1
        expected = int(np.ceil(np.log(40) / np.log(2) - 1))
        assert peng_walk_length(0.2, 0.5) == expected


class TestRefinedWalkLength:
    def test_never_exceeds_peng(self):
        for lam in (0.3, 0.6, 0.9, 0.99):
            for eps in (0.5, 0.1, 0.01):
                for ds, dt in [(1, 1), (2, 5), (10, 10), (100, 3)]:
                    assert refined_walk_length(eps, lam, ds, dt) <= peng_walk_length(eps, lam)

    def test_decreases_with_degree(self):
        low = refined_walk_length(0.05, 0.9, 2, 2)
        high = refined_walk_length(0.05, 0.9, 100, 100)
        assert high < low

    def test_degree_one_matches_paper_intuition(self):
        # with d(s)=d(t)=1 the numerator is 4/eps(1-lam): within 1 of Peng's bound
        eps, lam = 0.1, 0.8
        assert abs(refined_walk_length(eps, lam, 1, 1) - peng_walk_length(eps, lam)) <= 1

    def test_minimum_one(self):
        assert refined_walk_length(0.5, 0.1, 1000, 1000) >= 1

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            refined_walk_length(0.1, 0.5, 0, 3)


class TestTruncationErrorBound:
    def test_bound_below_half_epsilon_at_refined_length(self):
        for eps in (0.5, 0.1, 0.02):
            for lam in (0.5, 0.9):
                for ds, dt in [(3, 7), (50, 2), (20, 20)]:
                    length = refined_walk_length(eps, lam, ds, dt)
                    assert truncation_error_bound(length, lam, ds, dt) <= eps / 2 + 1e-12

    def test_bound_decreases_with_length(self):
        assert truncation_error_bound(10, 0.9, 3, 3) < truncation_error_bound(2, 0.9, 3, 3)

    def test_zero_lambda_is_exact(self):
        assert truncation_error_bound(1, 0.0, 3, 3) == 0.0


class TestTruncationAgainstGroundTruth:
    def test_smm_at_refined_length_is_within_half_epsilon(self):
        """Theorem 3.1 end-to-end: SMM truncated at ℓ is within ε/2 of r(s, t)."""
        graph = barabasi_albert_graph(150, 5, rng=21)
        lam = spectral_radius_second(graph)
        oracle = GroundTruthOracle(graph)
        rng = np.random.default_rng(3)
        for _ in range(5):
            s, t = rng.choice(graph.num_nodes, size=2, replace=False)
            for eps in (0.5, 0.1):
                length = refined_walk_length(
                    eps, lam, graph.degree(int(s)), graph.degree(int(t))
                )
                approx = smm_estimate(graph, int(s), int(t), length).value
                assert abs(approx - oracle.query(int(s), int(t))) <= eps / 2 + 1e-9
