"""Unit tests for the dataset registry and query-set generation."""

import numpy as np
import pytest

from repro.experiments.datasets import (
    available_datasets,
    clear_dataset_cache,
    dataset_spec,
    load_dataset,
    register_snap_file,
)
from repro.experiments.queries import edge_query_set, random_query_set
from repro.graph.io import write_edge_list
from repro.graph.properties import is_connected


class TestDatasets:
    def test_registry_contains_paper_roles(self):
        names = available_datasets()
        for expected in (
            "facebook-syn",
            "dblp-syn",
            "youtube-syn",
            "orkut-syn",
            "livejournal-syn",
            "friendster-syn",
        ):
            assert expected in names

    def test_regime_filter(self):
        dense = available_datasets(regime="large-dense")
        assert "orkut-syn" in dense and "dblp-syn" not in dense

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("no-such-dataset")

    def test_tiny_dataset_loads_connected(self):
        graph = load_dataset("facebook-tiny")
        assert is_connected(graph)
        assert graph.num_nodes <= 400

    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        a = load_dataset("dblp-tiny")
        b = load_dataset("dblp-tiny")
        assert a is b

    def test_degree_regimes_are_ordered(self):
        dense = load_dataset("orkut-tiny")
        sparse = load_dataset("dblp-tiny")
        assert dense.average_degree > 3 * sparse.average_degree

    def test_register_snap_file(self, tmp_path):
        graph = load_dataset("facebook-tiny")
        path = tmp_path / "snap.txt"
        write_edge_list(graph, path)
        register_snap_file("custom-snap", str(path), role="test")
        loaded = load_dataset("custom-snap")
        assert loaded.num_edges == graph.num_edges


class TestQuerySets:
    def test_random_query_set_size_and_validity(self):
        graph = load_dataset("facebook-tiny")
        queries = random_query_set(graph, 50, rng=1)
        assert len(queries) == 50
        for s, t in queries:
            assert s != t
            assert 0 <= s < graph.num_nodes and 0 <= t < graph.num_nodes

    def test_random_queries_distinct(self):
        graph = load_dataset("facebook-tiny")
        queries = random_query_set(graph, 60, rng=2)
        keys = {(min(s, t), max(s, t)) for s, t in queries}
        assert len(keys) == 60

    def test_random_queries_reproducible(self):
        graph = load_dataset("facebook-tiny")
        assert random_query_set(graph, 20, rng=3).pairs == random_query_set(graph, 20, rng=3).pairs

    def test_edge_query_set_pairs_are_edges(self):
        graph = load_dataset("facebook-tiny")
        queries = edge_query_set(graph, 40, rng=4)
        assert len(queries) == 40
        for s, t in queries:
            assert graph.has_edge(s, t)

    def test_edge_query_more_than_edges_uses_replacement(self):
        graph = load_dataset("dblp-tiny")
        queries = edge_query_set(graph, graph.num_edges + 10, rng=5)
        assert len(queries) == graph.num_edges + 10

    def test_as_array(self):
        graph = load_dataset("facebook-tiny")
        queries = random_query_set(graph, 5, rng=6)
        array = queries.as_array()
        assert array.shape == (5, 2)
        assert array.dtype == np.int64
