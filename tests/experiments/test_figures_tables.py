"""Unit tests for the figure/table drivers and text reporting."""

import math

import pytest

from repro.experiments import figures, tables
from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import format_series, format_table


class TestFig2:
    def test_rows_and_growth(self):
        rows = figures.fig2_running_example(max_length=8)
        assert len(rows) == 8
        # walk counts grow monotonically; eta* grows quadratically-ish
        path_counts = [row["#path(s)+#path(t)"] for row in rows]
        budgets = [row["eta_star"] for row in rows]
        assert all(b > a for a, b in zip(path_counts, path_counts[1:]))
        assert budgets[-1] > budgets[0]
        # the crossover the paper highlights: traversal eventually outgrows eta*
        assert path_counts[-1] > budgets[-1]
        assert path_counts[0] < budgets[0]


class TestSweepDrivers:
    def test_run_dataset_sweep_small(self):
        graph = load_dataset("facebook-tiny")
        rows = figures.run_dataset_sweep(
            graph,
            query_kind="random",
            epsilons=(0.5, 0.2),
            num_queries=3,
            methods=("geer", "smm"),
            dataset_label="tiny",
            rng=1,
        )
        assert len(rows) == 4
        for row in rows:
            assert row["dataset"] == "tiny"
            assert row["avg_abs_error"] <= row["epsilon"]

    def test_edge_sweep(self):
        graph = load_dataset("facebook-tiny")
        rows = figures.fig5_edge_query_time(
            dataset=graph,
            epsilons=(0.5,),
            num_queries=3,
            methods=("geer", "mc2"),
            dataset_label="tiny",
            rng=2,
        )
        assert {row["method"] for row in rows} == {"geer", "mc2"}

    def test_invalid_query_kind(self):
        graph = load_dataset("facebook-tiny")
        with pytest.raises(ValueError):
            figures.run_dataset_sweep(graph, query_kind="nope", num_queries=2)


class TestTauAndSwitchDrivers:
    def test_vary_tau_rows(self):
        graph = load_dataset("facebook-tiny")
        rows = figures.fig8_fig9_vary_tau(
            graph, epsilon=0.3, taus=(1, 3), num_queries=3, rng=3, dataset_label="tiny"
        )
        assert len(rows) == 4  # 2 taus x 2 methods
        assert {row["tau"] for row in rows} == {1, 3}

    def test_vary_switch_point_rows(self):
        graph = load_dataset("facebook-tiny")
        rows = figures.fig10_vary_switch_point(
            graph, epsilon=0.3, offsets=(-2, 0, 2), num_queries=3, rng=4, dataset_label="tiny"
        )
        assert [row["offset"] for row in rows] == [-2, 0, 2]
        for row in rows:
            assert row["avg_time_ms"] > 0

    def test_fig11_rows(self):
        graph = load_dataset("facebook-tiny")
        rows = figures.fig11_walk_length_comparison(
            [graph], epsilons=(0.5,), num_queries=3, rng=5, dataset_labels=["tiny"]
        )
        assert len(rows) == 2
        refined = next(r for r in rows if r["length_rule"] == "refined")
        peng = next(r for r in rows if r["length_rule"] == "peng")
        assert refined["example_length"] <= peng["example_length"]


class TestTables:
    def test_table3_rows(self):
        rows = tables.table3_dataset_statistics(["facebook-tiny", "dblp-tiny"])
        assert len(rows) == 2
        for row in rows:
            assert row["#nodes (n)"] > 0
            assert row["connected"] is True

    def test_table1_theoretical(self):
        rows = tables.table1_theoretical_complexities()
        assert any("AMC / GEER" in row["algorithm"] for row in rows)

    def test_table1_empirical_scaling(self):
        graph = load_dataset("facebook-tiny")
        report = tables.table1_complexity_scaling(
            graph, epsilons=(0.4, 0.05), num_queries=6, method="amc", rng=6
        )
        assert len(report["rows"]) == 2
        # work grows as epsilon decreases (AMC's budget scales like 1/eps^2)
        assert report["rows"][1]["mean_work"] > report["rows"][0]["mean_work"]
        assert report["epsilon_scaling_exponent"] > 0


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": float("nan")}], title="T")
        assert "T" in text and "a" in text and "nan" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_series(self):
        text = format_series({"geer": {0.5: 1.0, 0.1: 2.0}, "amc": {0.5: 3.0}}, x_label="eps")
        assert "geer" in text and "eps=0.5" in text
