"""Unit tests for the experiment harness."""

import math

import pytest

from repro.experiments.datasets import load_dataset
from repro.experiments.harness import (
    EDGE_QUERY_METHODS,
    METHOD_REGISTRY,
    RANDOM_QUERY_METHODS,
    build_context,
    run_method,
    run_sweep,
)
from repro.experiments.queries import edge_query_set, random_query_set


@pytest.fixture(scope="module")
def graph():
    return load_dataset("facebook-tiny")


@pytest.fixture(scope="module")
def context(graph):
    return build_context(graph, rng=5)


@pytest.fixture(scope="module")
def random_queries(graph):
    return random_query_set(graph, 4, rng=6)


@pytest.fixture(scope="module")
def edge_queries(graph):
    return edge_query_set(graph, 4, rng=7)


class TestContext:
    def test_registry_covers_paper_methods(self):
        for method in RANDOM_QUERY_METHODS + EDGE_QUERY_METHODS:
            assert method in METHOD_REGISTRY

    def test_lambda_exposed(self, context):
        assert 0 < context.lambda_max_abs < 1

    def test_rp_sketch_cached_per_epsilon(self, context):
        a = context.rp_sketch(0.5)
        b = context.rp_sketch(0.5)
        assert a is b

    def test_unknown_override_rejected(self, graph):
        with pytest.raises(TypeError):
            build_context(graph, nonsense=1)


class TestRunMethod:
    @pytest.mark.parametrize("method", ["geer", "amc", "smm", "rp", "exact"])
    def test_random_query_methods_within_epsilon(self, context, random_queries, method):
        sweep = run_method(context, method, random_queries, 0.25)
        assert sweep.completed == len(random_queries)
        assert sweep.average_absolute_error <= 0.25
        assert sweep.success_rate == 1.0
        assert sweep.average_time_ms >= 0.0

    @pytest.mark.parametrize("method", ["mc2", "hay"])
    def test_edge_query_methods(self, context, edge_queries, method):
        sweep = run_method(context, method, edge_queries, 0.25)
        assert sweep.completed == len(edge_queries)
        assert sweep.average_absolute_error <= 0.25

    def test_tp_tpc_with_scaled_budgets(self, context, random_queries):
        for method in ("tp", "tpc"):
            sweep = run_method(context, method, random_queries, 0.3)
            assert sweep.completed == len(random_queries)
            assert sweep.average_absolute_error <= 0.3

    def test_unknown_method(self, context, random_queries):
        with pytest.raises(KeyError):
            run_method(context, "nope", random_queries, 0.2)

    def test_time_budget_marks_timeout(self, context, random_queries):
        sweep = run_method(
            context, "geer", random_queries, 0.2, time_budget_seconds=0.0
        )
        assert sweep.timed_out
        assert sweep.completed < len(random_queries)

    def test_as_row_keys(self, context, random_queries):
        sweep = run_method(context, "geer", random_queries, 0.4)
        row = sweep.as_row()
        for key in ("method", "epsilon", "avg_time_ms", "avg_abs_error", "timed_out"):
            assert key in row

    def test_skip_on_infeasible_preprocessing(self, graph, random_queries):
        context = build_context(graph, rng=8, exact_max_nodes=10)
        sweep = run_method(context, "exact", random_queries, 0.2)
        assert sweep.skipped_reason is not None
        assert sweep.completed == 0


class TestRunSweep:
    def test_grid_shape(self, context, random_queries):
        results = run_sweep(context, ["geer", "smm"], random_queries, [0.5, 0.2])
        assert len(results) == 4
        assert {r.method for r in results} == {"geer", "smm"}
        assert {r.epsilon for r in results} == {0.5, 0.2}
