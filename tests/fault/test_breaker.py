"""CircuitBreaker state machine with an injected clock (no sleeping)."""

import pytest

from repro.fault import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpenError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_seconds=10.0, clock=clock)


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        breaker.allow()  # no raise

    def test_success_resets_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken: 2 + 2, never 3

    def test_threshold_consecutive_failures_trip(self, breaker):
        trip(breaker)
        assert breaker.state == OPEN
        assert breaker.trips == 1


class TestOpen:
    def test_open_rejects_with_retry_after(self, breaker, clock):
        trip(breaker)
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(6.0)
        assert breaker.rejections == 1

    def test_open_becomes_half_open_after_reset(self, breaker, clock):
        trip(breaker)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_admits_exactly_one_probe(self, breaker, clock):
        trip(breaker)
        clock.advance(10.0)
        breaker.allow()  # the probe
        assert breaker.probes == 1
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # concurrent caller while probe in flight

    def test_probe_success_closes(self, breaker, clock):
        trip(breaker)
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        breaker.allow()  # flows freely again

    def test_probe_failure_reopens_with_fresh_cooldown(self, breaker, clock):
        trip(breaker)
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(9.9)
        assert breaker.state == OPEN  # cool-down restarted at probe failure
        clock.advance(0.1)
        assert breaker.state == HALF_OPEN


def test_summary_counters(breaker, clock):
    trip(breaker)
    with pytest.raises(CircuitOpenError):
        breaker.allow()
    clock.advance(10.0)
    breaker.allow()
    breaker.record_success()
    summary = breaker.summary()
    assert summary["state"] == CLOSED
    assert summary["trips"] == 1
    assert summary["probes"] == 1
    assert summary["recoveries"] == 1
    assert summary["rejections"] == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_seconds=0.0)
