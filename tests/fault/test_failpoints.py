"""FailpointRegistry semantics: spec grammar, firing rules, fast path."""

import pytest

from repro.fault import (
    FAILPOINTS_ENV,
    FailpointRegistry,
    FailpointSpec,
    FailpointTriggered,
    arm_from_env,
)


@pytest.fixture()
def registry():
    return FailpointRegistry(seed=7)


class TestSpecGrammar:
    def test_bare_name_means_once(self, registry):
        (spec,) = registry.arm_from_string("pool:worker_crash")
        assert spec.times == 1 and spec.skip == 0 and spec.probability == 1.0

    def test_bare_integer_means_times(self, registry):
        (spec,) = registry.arm_from_string("pool:worker_crash=3")
        assert spec.times == 3

    def test_full_directive_list(self, registry):
        (spec,) = registry.arm_from_string(
            "net:slow_response=times:2+skip:1+prob:0.5+delay_ms:250"
        )
        assert spec.times == 2
        assert spec.skip == 1
        assert spec.probability == 0.5
        assert spec.delay_ms == 250.0

    def test_prob_without_times_is_unlimited(self, registry):
        (spec,) = registry.arm_from_string("shm:attach_fail=prob:0.1")
        assert spec.times is None

    def test_comma_separated_entries(self, registry):
        specs = registry.arm_from_string("a=2,b=prob:0.5, c")
        assert [s.name for s in specs] == ["a", "b", "c"]
        assert sorted(registry.armed_names()) == ["a", "b", "c"]

    def test_empty_and_none_are_noops(self, registry):
        assert registry.arm_from_string(None) == []
        assert registry.arm_from_string("") == []
        assert not registry.armed

    @pytest.mark.parametrize(
        "bad",
        ["x=times:-1", "x=prob:1.5", "x=skip:-2", "x=delay_ms:-1", "x=wat:1", "=3"],
    )
    def test_invalid_specs_raise(self, registry, bad):
        with pytest.raises(ValueError):
            registry.arm_from_string(bad)


class TestFiring:
    def test_disarmed_fire_is_none(self, registry):
        assert registry.fire("anything") is None
        assert not registry.armed

    def test_unarmed_name_does_not_fire(self, registry):
        registry.arm("a")
        assert registry.fire("b") is None

    def test_times_exhaustion(self, registry):
        registry.arm("a", "times:2")
        assert registry.fire("a") is not None
        assert registry.fire("a") is not None
        assert registry.fire("a") is None  # inert after N fires

    def test_skip_passes_first_evaluations(self, registry):
        registry.arm("a", "skip:2+times:1")
        assert registry.fire("a") is None
        assert registry.fire("a") is None
        assert registry.fire("a") is not None
        assert registry.fire("a") is None

    def test_probability_is_deterministic_under_reseed(self, registry):
        registry.arm("a", "prob:0.5")
        registry.reseed(1234)
        first = [registry.fire("a") is not None for _ in range(32)]
        registry.disarm("a")
        registry.arm("a", "prob:0.5")
        registry.reseed(1234)
        second = [registry.fire("a") is not None for _ in range(32)]
        assert first == second
        assert any(first) and not all(first)

    def test_check_raises_with_fire_count(self, registry):
        registry.arm("a", "times:2")
        with pytest.raises(FailpointTriggered) as excinfo:
            registry.check("a")
        assert excinfo.value.name == "a"
        assert excinfo.value.fires == 1

    def test_sleep_seconds_converts_delay(self, registry):
        registry.arm("a", "delay_ms:250")
        assert registry.sleep_seconds("a") == pytest.approx(0.25)
        assert registry.sleep_seconds("a") == 0.0  # times:1 exhausted

    def test_disarm_and_reset_clear_fast_path_flag(self, registry):
        registry.arm("a")
        registry.arm("b")
        registry.disarm("a")
        assert registry.armed
        registry.reset()
        assert not registry.armed
        assert registry.fire("b") is None

    def test_summary_reports_counters(self, registry):
        registry.arm("a", "times:2")
        registry.fire("a")
        summary = registry.summary()
        assert summary["a"]["fires"] == 1
        assert summary["a"]["evaluations"] == 1
        assert "a" in registry


class TestEnvArming:
    def test_arm_from_env_parses_variable(self):
        registry = FailpointRegistry()
        specs = arm_from_env(
            registry, {FAILPOINTS_ENV: "a=2,net:slow_response=delay_ms:10"}
        )
        assert [s.name for s in specs] == ["a", "net:slow_response"]

    def test_arm_from_env_without_variable_is_noop(self):
        registry = FailpointRegistry()
        assert arm_from_env(registry, {}) == []
        assert not registry.armed


class TestWalkChunkSite:
    def test_walk_chunk_fault_fires_inside_kernel(self):
        import numpy as np

        from repro.fault import FAULTS
        from repro.graph.generators import barabasi_albert_graph
        from repro.sampling.walks import walk_scores

        graph = barabasi_albert_graph(40, 2, rng=3)
        weights = np.ones(graph.num_nodes)
        try:
            FAULTS.arm("walk:chunk_fault", "skip:1+times:1")
            with pytest.raises(FailpointTriggered):
                walk_scores(
                    graph, 0, 2048, 8, weights,
                    rng=np.random.default_rng(0), chunk_size=256,
                )
        finally:
            FAULTS.reset()

    def test_disarmed_walks_match_armed_nonfiring_walks(self):
        import numpy as np

        from repro.fault import FAULTS
        from repro.graph.generators import barabasi_albert_graph
        from repro.sampling.walks import walk_scores

        graph = barabasi_albert_graph(40, 2, rng=3)
        weights = np.ones(graph.num_nodes)
        baseline = walk_scores(
            graph, 0, 1024, 8, weights,
            rng=np.random.default_rng(0), chunk_size=256,
        )
        try:
            # armed but never firing (skip is huge): values must be identical
            # because firing decisions never touch NumPy streams (Contract 7).
            FAULTS.arm("walk:chunk_fault", "skip:1000000")
            armed = walk_scores(
                graph, 0, 1024, 8, weights,
                rng=np.random.default_rng(0), chunk_size=256,
            )
        finally:
            FAULTS.reset()
        np.testing.assert_array_equal(baseline, armed)


def test_spec_repr_roundtrip_fields():
    spec = FailpointSpec.from_string("x", "times:4+skip:2+prob:0.25+delay_ms:5")
    assert spec.summary() == {
        "times": 4,
        "skip": 2,
        "prob": 0.25,
        "delay_ms": 5.0,
        "evaluations": 0,
        "fires": 0,
    }
