"""Crash-safe journal primitives + the artifact-level truncation property.

The load-bearing property (ISSUE 8 satellite): truncating ``deltas.jsonl``
at **any** byte offset must either replay to the last intact record or
refuse with a clear lineage error — it must never load a corrupt graph.
The log here is small enough to sweep every offset exhaustively, which is
strictly stronger than sampling.
"""

import json
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import QueryContext
from repro.fault import (
    JournalCorruptError,
    atomic_write_bytes,
    atomic_write_text,
    frame_record,
    frame_records,
    read_log,
)
from repro.graph import EdgeDelta, GraphStore, barabasi_albert_graph, graph_fingerprint
from repro.service.artifacts import (
    DELTA_LOG_NAME,
    ArtifactError,
    StaleArtifactError,
    load_bundle,
    read_delta_log_with_report,
    save_artifacts,
)

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "blob.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_write_leaves_old_content_and_no_tmp(self, tmp_path, monkeypatch):
        path = tmp_path / "blob.json"
        atomic_write_bytes(path, b"old")

        class Boom(Exception):
            pass

        def exploding_fsync(fd):  # crash after the tmp write, before replace
            raise Boom()

        monkeypatch.setattr("repro.fault.journal.os.fsync", exploding_fsync)
        with pytest.raises(Boom):
            atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"old"
        assert not list(tmp_path.glob("*.tmp"))


class TestFraming:
    def test_frame_roundtrip(self, tmp_path):
        payloads = ['{"a": 1}', '{"b": [1, 2]}', "plain text too"]
        path = tmp_path / "log"
        path.write_text(frame_records(payloads))
        read, report = read_log(path)
        assert read == payloads
        assert report.framed and not report.recovered
        assert report.records == 3

    def test_multiline_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_record("two\nlines")

    def test_empty_log(self, tmp_path):
        path = tmp_path / "log"
        path.write_bytes(b"")
        assert read_log(path) == ([], read_log(path)[1].__class__(path=str(path)))

    @given(
        payloads=st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\n", codec="utf-8"),
                min_size=1,
            ),
            min_size=1,
            max_size=6,
        ),
        cut=st.integers(min_value=0, max_value=1_000_000),
    )
    @SETTINGS
    def test_truncation_always_yields_clean_prefix(self, tmp_path, payloads, cut):
        """Pure truncation is always recoverable: the reader returns an exact
        prefix of the original records and never raises."""
        data = frame_records(payloads).encode("utf-8")
        cut = cut % (len(data) + 1)
        path = tmp_path / "log"
        path.write_bytes(data[:cut])
        read, report = read_log(path)
        assert read == payloads[: len(read)]  # exact prefix
        if cut < len(data):
            assert len(read) < len(payloads) or report.recovered or cut == 0

    @given(
        payloads=st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\n", codec="utf-8"),
                min_size=1,
            ),
            min_size=2,
            max_size=5,
        ),
        flip=st.integers(min_value=0, max_value=1_000_000),
    )
    @SETTINGS
    def test_midfile_corruption_never_yields_wrong_records(
        self, tmp_path, payloads, flip
    ):
        """Flipping one byte of a NON-final record either raises
        JournalCorruptError or (when the flip lands on insignificant bytes)
        still reads the original records — never silently different data."""
        lines = [frame_record(p) for p in payloads]
        first_region = len("".join(lines[:-1]).encode("utf-8"))
        data = bytearray("".join(lines).encode("utf-8"))
        pos = flip % first_region
        original = data[pos]
        data[pos] = original ^ 0x01
        if data[pos] == ord("\n") or original == ord("\n"):
            return  # changing line structure is a different scenario
        path = tmp_path / "log"
        path.write_bytes(bytes(data))
        try:
            read, _report = read_log(path)
        except JournalCorruptError:
            return
        assert read == payloads

    def test_final_record_missing_newline_but_intact_is_kept(self, tmp_path):
        payloads = ['{"a": 1}', '{"b": 2}']
        data = frame_records(payloads).encode("utf-8").rstrip(b"\n")
        path = tmp_path / "log"
        path.write_bytes(data)
        read, report = read_log(path)
        # CRC + length prove the final frame complete despite the lost newline:
        # recovered (the tear is tolerated) but nothing is dropped
        assert read == payloads
        assert report.recovered and report.dropped_records == 0

    def test_newline_terminated_garbage_is_corruption(self, tmp_path):
        path = tmp_path / "log"
        path.write_text(frame_record('{"a": 1}') + "deadbeef 4 xxxx\n")
        with pytest.raises(JournalCorruptError):
            read_log(path)

    def test_legacy_unframed_log_reads(self, tmp_path):
        path = tmp_path / "log"
        path.write_text('{"a": 1}\n{"b": 2}\n')
        read, report = read_log(path)
        assert read == ['{"a": 1}', '{"b": 2}']
        assert not report.framed

    def test_legacy_final_line_without_newline_is_dropped_even_if_json(
        self, tmp_path
    ):
        # {"a": 12} parses, but could be {"a": 1234} truncated mid-number:
        # without a CRC the reader cannot tell, so it must drop it.
        path = tmp_path / "log"
        path.write_text('{"a": 1}\n{"a": 12}')
        read, report = read_log(path)
        assert read == ['{"a": 1}']
        assert report.recovered and report.dropped_records == 1


class TestArtifactTruncationSweep:
    """The end-to-end property on real artifacts, every offset exhaustively."""

    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("artifacts")
        graph = barabasi_albert_graph(60, 3, rng=8)
        edges = graph.edge_array()
        store = GraphStore(graph)
        context = QueryContext(graph)
        for row in (4, 9, 14):
            delta = EdgeDelta(removals=[tuple(map(int, edges[row]))])
            context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        expected = graph_fingerprint(store.graph)
        return graph, tmp_path, expected

    def test_every_truncation_offset_is_safe(self, saved):
        graph, artifact_dir, expected = saved
        log_path = artifact_dir / DELTA_LOG_NAME
        original = log_path.read_bytes()
        outcomes = {"replayed": 0, "refused": 0}
        try:
            for cut in range(len(original) + 1):
                log_path.write_bytes(original[:cut])
                try:
                    restored, _sketch = load_bundle(graph, artifact_dir)
                except (StaleArtifactError, ArtifactError):
                    outcomes["refused"] += 1
                    continue
                # a load that succeeds MUST be the fully-replayed graph
                assert graph_fingerprint(restored.graph) == expected
                assert restored.epoch == 3
                outcomes["replayed"] += 1
        finally:
            log_path.write_bytes(original)
        # sanity on the sweep itself: both outcomes occur, and only a full
        # log (intact or tail-torn-into-frame-validity) replays
        assert outcomes["refused"] > 0
        assert outcomes["replayed"] >= 1  # at least the untruncated offset

    def test_truncation_to_fewer_records_mentions_recovery(self, saved):
        graph, artifact_dir, _ = saved
        log_path = artifact_dir / DELTA_LOG_NAME
        original = log_path.read_bytes()
        try:
            # cut mid-way through the final record: torn tail, 2/3 records
            log_path.write_bytes(original[: len(original) - 5])
            with pytest.raises(StaleArtifactError, match="re-run warm-up"):
                load_bundle(graph, artifact_dir)
        finally:
            log_path.write_bytes(original)

    def test_report_surfaces_torn_tail(self, saved):
        _, artifact_dir, _ = saved
        log_path = artifact_dir / DELTA_LOG_NAME
        original = log_path.read_bytes()
        try:
            log_path.write_bytes(original[:-5])
            deltas, report = read_delta_log_with_report(log_path)
            assert len(deltas) == 2
            assert report.recovered and report.dropped_records == 1
        finally:
            log_path.write_bytes(original)


def test_frame_format_is_stable():
    """The on-disk frame format is a compatibility surface — pin it."""
    payload = '{"ops": []}'
    raw = payload.encode("utf-8")
    assert frame_record(payload) == f"{zlib.crc32(raw):08x} {len(raw)} {payload}\n"
    assert json.loads(payload) == {"ops": []}
