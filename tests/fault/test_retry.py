"""RetryPolicy: backoff math, Retry-After hints, and the call() loop."""

import pytest

from repro.fault import NO_RETRY, RetryPolicy


class Flaky:
    """Fails ``failures`` times with ``exc``, then returns ``value``."""

    def __init__(self, failures, exc=ConnectionError("boom"), value="ok"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_seconds=0.1, factor=2.0, jitter=False)
        assert policy.backoff_seconds(0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)
        assert policy.backoff_seconds(2) == pytest.approx(0.4)

    def test_cap(self):
        policy = RetryPolicy(
            base_seconds=1.0, factor=10.0, max_backoff_seconds=2.0, jitter=False
        )
        assert policy.backoff_seconds(5) == 2.0

    def test_jitter_stays_in_half_to_full_band_and_is_seeded(self):
        a = RetryPolicy(base_seconds=1.0, jitter=True, seed=42)
        b = RetryPolicy(base_seconds=1.0, jitter=True, seed=42)
        delays = [a.backoff_seconds(0) for _ in range(16)]
        assert delays == [b.backoff_seconds(0) for _ in range(16)]
        assert all(0.5 <= d <= 1.0 for d in delays)
        assert len(set(delays)) > 1

    def test_retry_after_hint_overrides_backoff(self):
        policy = RetryPolicy(base_seconds=0.1, jitter=False, max_backoff_seconds=5.0)
        assert policy.backoff_seconds(0, retry_after=3.0) == 3.0
        # hints are still capped: a hostile server cannot stall the client
        assert policy.backoff_seconds(0, retry_after=600.0) == 5.0


class TestCall:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        result = RetryPolicy(max_attempts=3).call(
            lambda: "ok", retry_on=(ConnectionError,), sleep=sleeps.append
        )
        assert result == "ok" and sleeps == []

    def test_retries_then_succeeds(self):
        fn = Flaky(failures=2)
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_seconds=0.01, jitter=False)
        assert policy.call(fn, retry_on=(ConnectionError,), sleep=sleeps.append) == "ok"
        assert fn.calls == 3
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_attempts_raise_last_error(self):
        fn = Flaky(failures=10)
        policy = RetryPolicy(max_attempts=3, base_seconds=0.0)
        with pytest.raises(ConnectionError):
            policy.call(fn, retry_on=(ConnectionError,), sleep=lambda _: None)
        assert fn.calls == 3

    def test_non_matching_exception_propagates_immediately(self):
        fn = Flaky(failures=5, exc=KeyError("nope"))
        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=3).call(
                fn, retry_on=(ConnectionError,), sleep=lambda _: None
            )
        assert fn.calls == 1

    def test_retry_after_of_extracts_hint(self):
        class Hinted(Exception):
            retry_after = 0.75

        fn = Flaky(failures=1, exc=Hinted())
        sleeps = []
        policy = RetryPolicy(max_attempts=2, base_seconds=0.01, jitter=False)
        policy.call(
            fn,
            retry_on=(Hinted,),
            retry_after_of=lambda exc: exc.retry_after,
            sleep=sleeps.append,
        )
        assert sleeps == [pytest.approx(0.75)]

    def test_on_retry_hook_observes_each_retry(self):
        seen = []
        fn = Flaky(failures=2)
        RetryPolicy(max_attempts=3, base_seconds=0.0).call(
            fn,
            retry_on=(ConnectionError,),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc, delay: seen.append(attempt),
        )
        assert seen == [0, 1]

    def test_no_retry_is_single_attempt(self):
        fn = Flaky(failures=1)
        with pytest.raises(ConnectionError):
            NO_RETRY.call(fn, retry_on=(ConnectionError,), sleep=lambda _: None)
        assert fn.calls == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_seconds=-1.0)
