"""Unit tests for graph builders/converters."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphStructureError
from repro.graph.builders import (
    from_edge_array,
    from_edges,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
)


class TestFromEdges:
    def test_simple(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_num_nodes_override(self):
        graph = from_edges([(0, 1)], num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.degree(4) == 0

    def test_deduplicates_and_symmetrises(self):
        graph = from_edges([(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_rejects_duplicates_when_disabled(self):
        with pytest.raises(GraphStructureError):
            from_edges([(0, 1), (1, 0)], deduplicate=False)

    def test_rejects_self_loops(self):
        with pytest.raises(GraphStructureError):
            from_edges([(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_edges([(0, 3)], num_nodes=2)

    def test_empty_edge_list_with_nodes(self):
        graph = from_edge_array(np.empty((0, 2), dtype=np.int64), num_nodes=3)
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([[0, 1, 2]]))


class TestScipyConversion:
    def test_from_scipy_sparse(self):
        matrix = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1) and graph.has_edge(0, 2)

    def test_from_scipy_asymmetric_pattern_symmetrised(self):
        matrix = sp.csr_matrix(np.array([[0, 1], [0, 0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.has_edge(0, 1)

    def test_from_scipy_drops_diagonal(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            from_scipy_sparse(sp.csr_matrix(np.zeros((2, 3))))


class TestNetworkxConversion:
    def test_roundtrip(self):
        nx_graph = nx.karate_club_graph()
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == nx_graph.number_of_nodes()
        assert graph.num_edges == nx_graph.number_of_edges()
        back = to_networkx(graph)
        assert nx.is_isomorphic(nx_graph, back)

    def test_string_labels(self):
        nx_graph = nx.Graph([("a", "b"), ("b", "c")])
        graph = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_directed_input_becomes_undirected(self):
        nx_graph = nx.DiGraph([(0, 1), (1, 0), (1, 2)])
        graph = from_networkx(nx_graph)
        assert graph.num_edges == 2

    def test_adjacency_matches_networkx(self):
        nx_graph = nx.erdos_renyi_graph(25, 0.2, seed=4)
        graph = from_networkx(nx_graph)
        ours = graph.adjacency_matrix().toarray()
        theirs = nx.to_numpy_array(nx_graph, nodelist=sorted(nx_graph.nodes()))
        np.testing.assert_allclose(ours, theirs)
