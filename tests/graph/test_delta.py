"""Tests for repro.graph.delta: EdgeDelta batches and the GraphStore."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphStructureError
from repro.graph import (
    EdgeDelta,
    Graph,
    GraphStore,
    barabasi_albert_graph,
    expand_neighborhood,
    from_edges,
    graph_fingerprint,
    with_random_weights,
)
from tests.strategies import connected_graphs


def _edge_map(graph):
    return {
        (int(u), int(v)): float(w)
        for (u, v), w in zip(graph.edge_array(), graph.edge_weight_array())
    }


def _cold_rebuild(graph, delta):
    """The post-delta graph built the slow, obviously-correct way."""
    current = _edge_map(graph)
    for u, v in delta.removals:
        del current[(u, v)]
    for u, v, w in delta.reweights:
        current[(u, v)] = w
    for u, v, w in delta.inserts:
        current[(u, v)] = 1.0 if w is None else w
    ordered = sorted(current)
    return from_edges(
        ordered,
        num_nodes=graph.num_nodes,
        weights=[current[e] for e in ordered] if graph.is_weighted else None,
    )


@st.composite
def graph_and_delta(draw, weighted=None):
    """A connected graph plus a structurally valid random delta."""
    graph = draw(connected_graphs(min_nodes=5, max_nodes=25, weighted=weighted))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    edges = [tuple(map(int, e)) for e in graph.edge_array()]
    existing = set(edges)

    num_removals = draw(st.integers(0, min(2, len(edges))))
    removal_ids = rng.choice(len(edges), size=num_removals, replace=False)
    removals = [edges[i] for i in removal_ids]

    inserts = []
    attempts = 0
    want = draw(st.integers(0, 3))
    while len(inserts) < want and attempts < 50:
        attempts += 1
        u, v = map(int, rng.integers(0, n, size=2))
        key = (min(u, v), max(u, v))
        if u == v or key in existing or key in {i[:2] for i in inserts}:
            continue
        if graph.is_weighted and draw(st.booleans()):
            inserts.append(key + (float(rng.uniform(0.5, 2.5)),))
        else:
            inserts.append(key)

    reweights = []
    if graph.is_weighted:
        candidates = [e for e in edges if e not in removals]
        want_rw = draw(st.integers(0, min(2, len(candidates))))
        for i in rng.choice(len(candidates), size=want_rw, replace=False):
            reweights.append(candidates[i] + (float(rng.uniform(0.5, 2.5)),))

    return graph, EdgeDelta(inserts=inserts, removals=removals, reweights=reweights)


class TestCanonicalisation:
    def test_ops_are_canonicalised(self):
        delta = EdgeDelta(inserts=[(5, 2), (1, 3)], removals=[(9, 4)])
        assert delta.inserts == ((1, 3, None), (2, 5, None))
        assert delta.removals == ((4, 9),)

    def test_duplicates_collapse(self):
        delta = EdgeDelta(inserts=[(1, 2), (2, 1)])
        assert delta.num_changes == 1

    def test_conflicting_duplicate_insert_raises(self):
        with pytest.raises(GraphStructureError):
            EdgeDelta(inserts=[(1, 2, 1.0), (2, 1, 2.0)])

    def test_overlapping_ops_raise(self):
        with pytest.raises(GraphStructureError, match="at most one operation"):
            EdgeDelta(inserts=[(1, 2)], removals=[(2, 1)])
        with pytest.raises(GraphStructureError, match="at most one operation"):
            EdgeDelta(removals=[(1, 2)], reweights=[(1, 2, 2.0)])

    def test_self_loop_raises(self):
        with pytest.raises(GraphStructureError):
            EdgeDelta(inserts=[(3, 3)])

    def test_bad_weight_raises(self):
        with pytest.raises(GraphStructureError):
            EdgeDelta(reweights=[(0, 1, -2.0)])
        with pytest.raises(GraphStructureError):
            EdgeDelta(inserts=[(0, 1, float("nan"))])

    def test_touched_nodes(self):
        delta = EdgeDelta(
            inserts=[(7, 2)], removals=[(4, 1)], reweights=[(2, 9, 1.5)]
        )
        assert list(delta.touched_nodes) == [1, 2, 4, 7, 9]

    def test_empty_delta_is_falsy(self):
        assert not EdgeDelta()
        assert EdgeDelta(inserts=[(0, 1)])


class TestApplyTo:
    def test_insert_remove_unweighted(self):
        graph = barabasi_albert_graph(30, 2, rng=1)
        edge = tuple(map(int, graph.edge_array()[5]))
        non_edge = next(
            (u, v)
            for u in range(30)
            for v in range(u + 1, 30)
            if not graph.has_edge(u, v)
        )
        delta = EdgeDelta(inserts=[non_edge], removals=[edge])
        patched = delta.apply_to(graph)
        assert patched.has_edge(*non_edge)
        assert not patched.has_edge(*edge)
        assert patched.num_edges == graph.num_edges

    def test_bit_identical_to_cold_from_edges(self):
        graph = with_random_weights(barabasi_albert_graph(60, 3, rng=2), rng=3)
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        delta = EdgeDelta(
            inserts=[(50, 59, 2.0)],
            removals=[edges[4]],
            reweights=[edges[10] + (0.25,)],
        )
        patched = delta.apply_to(graph)
        cold = _cold_rebuild(graph, delta)
        assert np.array_equal(patched.indptr, cold.indptr)
        assert np.array_equal(patched.indices, cold.indices)
        assert np.array_equal(patched.weights, cold.weights)

    def test_empty_delta_returns_graph(self):
        graph = barabasi_albert_graph(10, 2, rng=1)
        assert EdgeDelta().apply_to(graph) is graph

    def test_insert_existing_edge_raises(self):
        graph = barabasi_albert_graph(10, 2, rng=1)
        edge = tuple(map(int, graph.edge_array()[0]))
        with pytest.raises(GraphStructureError, match="existing edge"):
            EdgeDelta(inserts=[edge]).apply_to(graph)

    def test_remove_missing_edge_raises(self):
        graph = from_edges([(0, 1), (1, 2)])
        with pytest.raises(GraphStructureError, match="non-existent"):
            EdgeDelta(removals=[(0, 2)]).apply_to(graph)

    def test_reweight_missing_edge_raises(self):
        graph = from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        with pytest.raises(GraphStructureError, match="non-existent"):
            EdgeDelta(reweights=[(0, 2, 1.0)]).apply_to(graph)

    def test_weight_ops_on_unweighted_graph_raise(self):
        graph = from_edges([(0, 1), (1, 2)])
        with pytest.raises(GraphStructureError, match="unweighted"):
            EdgeDelta(reweights=[(0, 1, 2.0)]).apply_to(graph)
        with pytest.raises(GraphStructureError, match="unweighted"):
            EdgeDelta(inserts=[(0, 2, 2.0)]).apply_to(graph)

    def test_out_of_range_node_raises(self):
        graph = from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="out of range"):
            EdgeDelta(inserts=[(0, 99)]).apply_to(graph)

    def test_plain_insert_on_weighted_graph_gets_unit_weight(self):
        graph = from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        patched = EdgeDelta(inserts=[(0, 2)]).apply_to(graph)
        assert patched.edge_weight(0, 2) == 1.0

    def test_non_canonical_csr_falls_back_to_rebuild(self):
        # Rows with unsorted columns: the splice fast path must not apply.
        indptr = np.array([0, 2, 3, 5, 6])
        indices = np.array([2, 1, 0, 3, 0, 2])  # row 0 is (2, 1): unsorted
        weights = np.array([2.0, 1.0, 1.0, 3.0, 2.0, 3.0])
        graph = Graph(indptr, indices, weights)
        delta = EdgeDelta(inserts=[(1, 3)])
        patched = delta.apply_to(graph)
        assert patched.has_edge(1, 3)
        assert patched.edge_weight(0, 2) == 2.0
        # the rebuild canonicalises the layout
        assert EdgeDelta._rows_sorted(patched.indptr, patched.indices)

    @settings(max_examples=60, deadline=None)
    @given(case=graph_and_delta(weighted=None))
    def test_apply_matches_cold_rebuild_bitwise(self, case):
        graph, delta = case
        patched = delta.apply_to(graph)
        cold = _cold_rebuild(graph, delta)
        assert np.array_equal(patched.indptr, cold.indptr)
        assert np.array_equal(patched.indices, cold.indices)
        if graph.is_weighted:
            assert np.array_equal(patched.weights, cold.weights)
        else:
            assert patched.weights is None


class TestSerialization:
    def test_json_round_trip(self):
        delta = EdgeDelta(
            inserts=[(0, 1), (2, 3, 1.25)], removals=[(4, 5)], reweights=[(6, 7, 0.5)]
        )
        assert EdgeDelta.from_json(delta.to_json()) == delta

    def test_fingerprint_distinguishes_ops(self):
        a = EdgeDelta(inserts=[(0, 1)])
        b = EdgeDelta(removals=[(0, 1)])
        c = EdgeDelta(inserts=[(0, 1, 1.0)])
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_chain_is_order_sensitive(self):
        a = EdgeDelta(inserts=[(0, 1)])
        b = EdgeDelta(removals=[(2, 3)])
        root = "seed"
        assert a.chain(b.chain(root)) != b.chain(a.chain(root))


class TestExpandNeighborhood:
    def test_zero_hops_is_identity(self):
        graph = barabasi_albert_graph(20, 2, rng=1)
        assert list(expand_neighborhood(graph, [3, 7], 0)) == [3, 7]

    def test_one_hop_adds_neighbors(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        region = set(expand_neighborhood(graph, [0], 1))
        assert region == {0, 1, 3}

    def test_hops_saturate(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        region = set(expand_neighborhood(graph, [0], 10))
        assert region == {0, 1, 2, 3}

    def test_out_of_range_raises(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(ValueError):
            expand_neighborhood(graph, [5], 1)


class TestGraphStore:
    def test_epochs_and_log(self):
        graph = barabasi_albert_graph(25, 2, rng=1)
        store = GraphStore(graph)
        assert store.epoch == 0
        assert store.lineage == graph_fingerprint(graph)
        edge = tuple(map(int, graph.edge_array()[3]))
        delta = EdgeDelta(removals=[edge])
        new_graph = store.apply(delta)
        assert store.epoch == 1
        assert store.graph is new_graph
        assert store.delta_log == (delta,)
        assert store.lineage == delta.chain(graph_fingerprint(graph))

    def test_history_window(self):
        graph = barabasi_albert_graph(25, 2, rng=1)
        store = GraphStore(graph, keep_history=1)
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        store.apply(EdgeDelta(removals=[edges[0]]))
        assert store.graph_at(0) is graph
        store.apply(EdgeDelta(removals=[edges[1]]))
        assert store.graph_at(1) is not None
        with pytest.raises(KeyError):
            store.graph_at(0)  # evicted: history window is 1

    def test_replay_reproduces_lineage_and_graph(self):
        graph = with_random_weights(barabasi_albert_graph(30, 2, rng=2), rng=7)
        store = GraphStore(graph)
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        store.apply(EdgeDelta(removals=[edges[0]]))
        store.apply(EdgeDelta(inserts=[edges[0] + (2.0,)]))
        replayed = GraphStore.replay(graph, store.delta_log)
        assert replayed.lineage == store.lineage
        assert replayed.graph == store.graph
        assert graph_fingerprint(replayed.graph) == graph_fingerprint(store.graph)
