"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    dumbbell_graph,
    erdos_renyi_graph,
    grid_graph,
    lollipop_graph,
    modular_social_graph,
    path_graph,
    power_law_cluster_graph,
    star_graph,
    stochastic_block_model_graph,
    toy_running_example,
    watts_strogatz_graph,
)
from repro.graph.properties import is_bipartite, is_connected


class TestDeterministicGraphs:
    def test_path(self):
        graph = path_graph(6)
        assert graph.num_nodes == 6
        assert graph.num_edges == 5
        assert graph.degree(0) == 1 and graph.degree(3) == 2

    def test_path_too_small(self):
        with pytest.raises(ValueError):
            path_graph(1)

    def test_cycle(self):
        graph = cycle_graph(7)
        assert graph.num_edges == 7
        assert set(graph.degrees.tolist()) == {2}

    def test_complete(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert set(graph.degrees.tolist()) == {5}

    def test_star(self):
        graph = star_graph(9)
        assert graph.num_nodes == 10
        assert graph.degree(0) == 9
        assert all(graph.degree(v) == 1 for v in range(1, 10))

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_connected(graph)
        assert is_bipartite(graph)

    def test_dumbbell(self):
        graph = dumbbell_graph(5, 3)
        assert is_connected(graph)
        assert graph.num_nodes == 2 * 5 + 2
        # two cliques worth of edges plus the path
        assert graph.num_edges == 2 * 10 + 3

    def test_lollipop(self):
        graph = lollipop_graph(4, 3)
        assert is_connected(graph)
        assert graph.num_nodes == 7
        assert graph.num_edges == 6 + 3

    def test_toy_running_example(self):
        graph, s, t = toy_running_example()
        assert graph.num_nodes == 11
        assert graph.degree(s) == 2
        assert graph.degree(t) == 7
        assert is_connected(graph)
        assert not is_bipartite(graph)


class TestRandomGraphs:
    def test_erdos_renyi_edge_count(self):
        graph = erdos_renyi_graph(50, 120, rng=1)
        assert graph.num_nodes == 50
        assert graph.num_edges == 120
        assert is_connected(graph)

    def test_erdos_renyi_reproducible(self):
        a = erdos_renyi_graph(40, 90, rng=7)
        b = erdos_renyi_graph(40, 90, rng=7)
        assert a == b

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 100)

    def test_erdos_renyi_too_few_for_connectivity(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 5, connect=True)

    def test_barabasi_albert_connected_and_dense(self):
        graph = barabasi_albert_graph(200, 5, rng=3)
        assert graph.num_nodes == 200
        assert is_connected(graph)
        # average degree close to 2 * attach_edges
        assert 7.0 <= graph.average_degree <= 11.0

    def test_barabasi_albert_heavy_tail(self):
        graph = barabasi_albert_graph(400, 4, rng=5)
        assert graph.degrees.max() > 4 * graph.average_degree

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)

    def test_watts_strogatz(self):
        graph = watts_strogatz_graph(100, 6, 0.2, rng=2)
        assert graph.num_nodes == 100
        assert is_connected(graph)
        assert abs(graph.average_degree - 6.0) < 0.5

    def test_watts_strogatz_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(20, 3, 0.1)

    def test_power_law_cluster(self):
        graph = power_law_cluster_graph(300, 3, 0.4, rng=4)
        assert graph.num_nodes == 300
        assert is_connected(graph)
        assert 4.0 <= graph.average_degree <= 7.0

    def test_sbm_blocks_denser_inside(self):
        graph = stochastic_block_model_graph([40, 40], 0.4, 0.02, rng=6)
        labels = np.repeat([0, 1], 40)
        intra = inter = 0
        for u, v in graph.edges():
            if labels[u] == labels[v]:
                intra += 1
            else:
                inter += 1
        assert intra > 5 * inter
        assert is_connected(graph)

    def test_sbm_invalid_probability(self):
        with pytest.raises(ValueError):
            stochastic_block_model_graph([10, 10], 1.5, 0.1)

    def test_modular_social_graph_structure(self):
        graph = modular_social_graph(4, 100, 5, 40, rng=8)
        assert graph.num_nodes == 400
        assert is_connected(graph)
        # most edges stay inside the planted communities
        labels = np.repeat(np.arange(4), 100)
        inter = sum(1 for u, v in graph.edges() if labels[u] != labels[v])
        assert inter <= 60  # the requested bridges (plus the spanning cycle)
        assert inter >= 3

    def test_modular_social_graph_slow_mixing(self):
        """The planted communities must slow the walk down (large lambda)."""
        from repro.linalg.eigen import spectral_radius_second

        modular = modular_social_graph(4, 100, 5, 10, rng=9)
        expander = barabasi_albert_graph(400, 5, rng=9)
        assert spectral_radius_second(modular) > spectral_radius_second(expander) + 0.2

    def test_modular_social_graph_needs_bridges(self):
        with pytest.raises(ValueError):
            modular_social_graph(3, 50, 3, 1, rng=1)

    def test_modular_single_community_is_plain_ba(self):
        graph = modular_social_graph(1, 120, 4, 0, rng=10)
        assert graph.num_nodes == 120
        assert is_connected(graph)

    def test_generators_reproducible_with_seed(self):
        for factory in (
            lambda seed: barabasi_albert_graph(80, 4, rng=seed),
            lambda seed: watts_strogatz_graph(60, 4, 0.3, rng=seed),
            lambda seed: power_law_cluster_graph(80, 3, 0.2, rng=seed),
        ):
            assert factory(9) == factory(9)
