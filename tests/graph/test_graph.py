"""Unit tests for the CSR Graph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphStructureError
from repro.graph.builders import from_edges
from repro.graph.graph import Graph


@pytest.fixture()
def triangle():
    return from_edges([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_basic_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert len(triangle) == 3

    def test_degrees(self, triangle):
        assert list(triangle.degrees) == [2, 2, 2]
        assert triangle.degree(0) == 2
        assert triangle.average_degree == pytest.approx(2.0)

    def test_degree_invalid_node(self, triangle):
        with pytest.raises(ValueError):
            triangle.degree(5)
        with pytest.raises(ValueError):
            triangle.degree(-1)

    def test_rejects_self_loop_in_validation(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([0, 1])
        with pytest.raises(GraphStructureError):
            Graph(indptr, indices)

    def test_rejects_asymmetric_structure(self):
        # arc 0->1 without 1->0
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(GraphStructureError):
            Graph(indptr, indices)

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_immutable_arrays(self, triangle):
        with pytest.raises(ValueError):
            triangle.degrees[0] = 99
        with pytest.raises(ValueError):
            triangle.indices[0] = 99


class TestAccessors:
    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors(0).tolist()) == [1, 2]

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)

    def test_has_edge_missing(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert not graph.has_edge(0, 2)

    def test_edges_iteration(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_matches_edges(self, triangle):
        array = triangle.edge_array()
        assert sorted(map(tuple, array.tolist())) == sorted(triangle.edges())

    def test_repr_contains_counts(self, triangle):
        assert "num_nodes=3" in repr(triangle)
        assert "num_edges=3" in repr(triangle)


class TestMatrices:
    def test_adjacency_symmetric(self, triangle):
        adjacency = triangle.adjacency_matrix()
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.sum() == 6  # 2m

    def test_laplacian_row_sums_zero(self, triangle):
        laplacian = triangle.laplacian_matrix()
        np.testing.assert_allclose(np.asarray(laplacian.sum(axis=1)).ravel(), 0.0)

    def test_transition_rows_sum_to_one(self, triangle):
        transition = triangle.transition_matrix()
        np.testing.assert_allclose(np.asarray(transition.sum(axis=1)).ravel(), 1.0)

    def test_transition_matches_definition(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        transition = graph.transition_matrix().toarray()
        degrees = graph.degrees
        adjacency = graph.adjacency_matrix().toarray()
        expected = adjacency / degrees[:, None]
        np.testing.assert_allclose(transition, expected)

    def test_stationary_distribution(self, triangle):
        pi = triangle.stationary_distribution()
        np.testing.assert_allclose(pi, np.full(3, 1 / 3))
        assert pi.sum() == pytest.approx(1.0)

    def test_stationary_is_degree_proportional(self):
        graph = from_edges([(0, 1), (1, 2), (1, 3)])
        pi = graph.stationary_distribution()
        np.testing.assert_allclose(pi, graph.degrees / (2 * graph.num_edges))


class TestDerivedGraphs:
    def test_subgraph_relabels(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)

    def test_subgraph_duplicate_nodes_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.subgraph([0, 0, 1])

    def test_remove_edges(self, triangle):
        reduced = triangle.remove_edges([(0, 1)])
        assert reduced.num_edges == 2
        assert not reduced.has_edge(0, 1)
        # original is untouched (immutability)
        assert triangle.has_edge(0, 1)

    def test_add_edges(self):
        graph = from_edges([(0, 1), (1, 2)])
        extended = graph.add_edges([(0, 2)])
        assert extended.num_edges == 3
        assert extended.has_edge(0, 2)

    def test_add_existing_edge_is_noop(self, triangle):
        same = triangle.add_edges([(0, 1)])
        assert same.num_edges == triangle.num_edges

    def test_add_self_loop_rejected(self, triangle):
        with pytest.raises(GraphStructureError):
            triangle.add_edges([(1, 1)])


class TestEqualityHash:
    def test_equal_graphs(self):
        a = from_edges([(0, 1), (1, 2)])
        b = from_edges([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = from_edges([(0, 1), (1, 2)])
        b = from_edges([(0, 1), (0, 2)])
        assert a != b

    def test_graph_not_equal_other_types(self):
        a = from_edges([(0, 1)])
        assert (a == 42) is False
