"""Unit tests for edge-list IO (unweighted ``u v`` and weighted ``u v w``)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphStructureError
from repro.graph.builders import from_edges, with_random_weights
from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import read_edge_list, write_edge_list
from strategies import arbitrary_graphs

IO_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def messy_edge_files(draw):
    """A clean graph plus a messy textual rendering of the same edge set."""
    graph = draw(arbitrary_graphs())
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    lines = []
    for u, v in graph.edges():
        lines.append(f"{u} {v}")
        if rng.random() < 0.3:
            lines.append(f"{v} {u}")  # reversed duplicate
        if rng.random() < 0.2:
            lines.append(f"{u} {v}")  # plain duplicate
    loops = [f"{v} {v}" for v in rng.integers(0, graph.num_nodes, size=3)]
    comments = ["# comment", "", "#tight comment"]
    extras = loops + comments
    for extra in extras:
        lines.insert(int(rng.integers(0, len(lines) + 1)), extra)
    return graph, "\n".join(lines) + "\n"


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        graph = barabasi_albert_graph(60, 3, rng=8)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header="synthetic test graph")
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0 1\n1 2\n# trailing\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_relabelling_of_sparse_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("10 200\n200 4000\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 5\n")
        graph = read_edge_list(path, relabel=False)
        assert graph.num_nodes == 6

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_duplicate_edges_merged(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justonetoken\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_written_file_has_header(self, tmp_path):
        graph = barabasi_albert_graph(20, 2, rng=1)
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header="hello")
        text = path.read_text()
        assert text.startswith("# hello")
        assert f"nodes: {graph.num_nodes}" in text


class TestRoundTripHypothesis:
    """Property tests: write → read is the identity on representable graphs."""

    @IO_SETTINGS
    @given(graph=arbitrary_graphs())
    def test_round_trip_identity_both_relabel_modes(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edge_list(graph, path)
        assert read_edge_list(path, relabel=True) == graph
        assert read_edge_list(path, relabel=False) == graph

    @IO_SETTINGS
    @given(data=messy_edge_files())
    def test_messy_input_reads_as_clean_graph(self, tmp_path_factory, data):
        # Comments, blank lines, duplicate/reversed edges and self-loops must
        # all be dropped, leaving exactly the clean edge set.
        graph, text = data
        path = tmp_path_factory.mktemp("io") / "messy.txt"
        path.write_text(text)
        assert read_edge_list(path) == graph

    @IO_SETTINGS
    @given(graph=arbitrary_graphs())
    def test_relabel_of_shifted_ids_recovers_graph(self, tmp_path_factory, graph):
        # Sparse/shifted id spaces (SNAP-style) compact back to the original.
        path = tmp_path_factory.mktemp("io") / "shifted.txt"
        with path.open("w") as handle:
            for u, v in graph.edges():
                handle.write(f"{10 * u + 7} {10 * v + 7}\n")
        assert read_edge_list(path, relabel=True) == graph


class TestRoundTripProperties:
    """Edge cases the hypothesis identity tests above do not cover."""

    def test_round_trip_is_idempotent_on_file_content(self, tmp_path):
        # Writing what was read reproduces the same edge section bit-for-bit.
        graph = barabasi_albert_graph(60, 3, rng=4)
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        write_edge_list(graph, first)
        write_edge_list(read_edge_list(first), second)
        assert first.read_text() == second.read_text()

    def test_relabel_compacts_sparse_ids_order_preserving(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("5 900\n900 42\n42 5\n")
        graph = read_edge_list(path, relabel=True)
        # Sorted original ids 5 < 42 < 900 map to 0, 1, 2.
        assert graph == from_edges([(0, 2), (2, 1), (1, 0)], num_nodes=3)

    def test_custom_comment_character(self, tmp_path):
        path = tmp_path / "pct.txt"
        path.write_text("% header\n0 1\n% middle\n1 2\n")
        graph = read_edge_list(path, comment="%")
        assert graph.num_edges == 2

    def test_third_column_is_a_weight(self, tmp_path):
        # `u v w` lines build a weighted graph; columns past the third are
        # ignored (SNAP files sometimes carry timestamps there).
        path = tmp_path / "cols.txt"
        path.write_text("0 1 0.5\n1 2 0.25 extra\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.is_weighted
        assert graph.edge_weight(0, 1) == 0.5
        assert graph.edge_weight(1, 2) == 0.25

    @pytest.mark.parametrize("relabel", [True, False])
    def test_round_trip_preserves_degrees(self, relabel, tmp_path):
        graph = barabasi_albert_graph(80, 4, rng=12)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, relabel=relabel)
        assert np.array_equal(loaded.degrees, graph.degrees)


class TestWeightedEdgeLists:
    """Weighted `u v w` parsing and write → read exactness."""

    @IO_SETTINGS
    @given(graph=arbitrary_graphs(weighted=True))
    def test_weighted_round_trip_identity(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("io") / "weighted.txt"
        write_edge_list(graph, path)
        for relabel in (True, False):
            loaded = read_edge_list(path, relabel=relabel)
            assert loaded.is_weighted
            # repr()-precision writes make the round trip bit-exact
            assert loaded == graph

    def test_weighted_read(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("# weighted\n0 1 2.5\n1 2 0.125\n")
        graph = read_edge_list(path)
        assert graph.is_weighted
        assert graph.total_weight == 2.625
        assert graph.weighted_degree(1) == 2.625

    @pytest.mark.parametrize(
        "content", ["0 1 2.5\n1 2\n", "0 1\n1 2 5.0\n"], ids=["w-first", "u-first"]
    )
    def test_mixed_weighted_unweighted_lines_raise(self, tmp_path, content):
        # the check is symmetric: whichever format comes first, mixing raises
        path = tmp_path / "mixed.txt"
        path.write_text(content)
        with pytest.raises(ValueError, match="mixes"):
            read_edge_list(path)

    def test_self_loop_line_does_not_latch_format(self, tmp_path):
        path = tmp_path / "loop-first.txt"
        path.write_text("3 3\n0 1 2.0\n1 2 3.0\n")
        graph = read_edge_list(path)
        assert graph.is_weighted
        assert graph.edge_weight(0, 1) == 2.0

    def test_conflicting_duplicate_weights_raise(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1 2.5\n1 0 3.0\n")
        with pytest.raises(GraphStructureError):
            read_edge_list(path)

    def test_agreeing_duplicate_weights_dedupe(self, tmp_path):
        path = tmp_path / "dup-ok.txt"
        path.write_text("0 1 2.5\n1 0 2.5\n1 2 1.0\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.edge_weight(0, 1) == 2.5

    def test_nonpositive_weight_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.0\n")
        with pytest.raises(GraphStructureError):
            read_edge_list(path)

    def test_weighted_false_ignores_extra_columns(self, tmp_path):
        # SNAP temporal files carry timestamps in column 3; weighted=False
        # restores the historic only-first-two-columns behaviour (duplicates
        # with different timestamps merge instead of raising).
        path = tmp_path / "temporal.txt"
        path.write_text("0 1 1082040961\n1 0 1082155839\n1 2 0\n")
        graph = read_edge_list(path, weighted=False)
        assert not graph.is_weighted
        assert graph.num_edges == 2

    def test_weighted_true_requires_weight_column(self, tmp_path):
        path = tmp_path / "u-v.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(ValueError, match="weight column"):
            read_edge_list(path, weighted=True)

    def test_weighted_writer_output_reloads_with_weights(self, tmp_path):
        graph = with_random_weights(barabasi_albert_graph(40, 3, rng=9), rng=10)
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header="weighted graph")
        text = path.read_text()
        data_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert all(len(line.split()) == 3 for line in data_lines)
        assert read_edge_list(path) == graph
