"""Unit tests for edge-list IO."""

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        graph = barabasi_albert_graph(60, 3, rng=8)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header="synthetic test graph")
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0 1\n1 2\n# trailing\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_relabelling_of_sparse_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("10 200\n200 4000\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 5\n")
        graph = read_edge_list(path, relabel=False)
        assert graph.num_nodes == 6

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_duplicate_edges_merged(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 0\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justonetoken\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_written_file_has_header(self, tmp_path):
        graph = barabasi_albert_graph(20, 2, rng=1)
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header="hello")
        text = path.read_text()
        assert text.startswith("# hello")
        assert f"nodes: {graph.num_nodes}" in text
