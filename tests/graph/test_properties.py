"""Unit tests for structural graph properties."""

import numpy as np
import pytest

from repro.exceptions import GraphStructureError
from repro.graph.builders import from_edges
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import (
    connected_components,
    degree_statistics,
    is_bipartite,
    is_connected,
    largest_connected_component,
    require_connected,
    require_walkable,
    summarize,
)


@pytest.fixture()
def disconnected():
    return from_edges([(0, 1), (2, 3)], num_nodes=5)


class TestConnectivity:
    def test_connected(self, path5):
        assert is_connected(path5)

    def test_disconnected(self, disconnected):
        assert not is_connected(disconnected)

    def test_components_sorted_by_size(self, disconnected):
        components = connected_components(disconnected)
        assert len(components) == 3
        assert len(components[0]) == 2

    def test_largest_connected_component(self, disconnected):
        largest = largest_connected_component(disconnected)
        assert largest.num_nodes == 2
        assert largest.num_edges == 1

    def test_require_connected_raises(self, disconnected):
        with pytest.raises(GraphStructureError):
            require_connected(disconnected)


class TestBipartiteness:
    def test_even_cycle_bipartite(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(5))

    def test_path_bipartite(self, path5):
        assert is_bipartite(path5)

    def test_star_bipartite(self, star6):
        assert is_bipartite(star6)

    def test_grid_bipartite(self, grid4x4):
        assert is_bipartite(grid4x4)

    def test_complete_not_bipartite(self, complete8):
        assert not is_bipartite(complete8)


class TestWalkable:
    def test_complete_graph_walkable(self, complete8):
        require_walkable(complete8)  # does not raise

    def test_bipartite_rejected(self, path5):
        with pytest.raises(GraphStructureError):
            require_walkable(path5)

    def test_disconnected_rejected(self, disconnected):
        with pytest.raises(GraphStructureError):
            require_walkable(disconnected)

    def test_isolated_node_rejected(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=4)
        with pytest.raises(GraphStructureError):
            require_walkable(graph)


class TestSummaries:
    def test_degree_statistics(self, star6):
        stats = degree_statistics(star6)
        assert stats["max"] == 6
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(2 * 6 / 7)

    def test_summarize_row(self, complete8):
        summary = summarize(complete8, name="K8")
        row = summary.as_row()
        assert row["name"] == "K8"
        assert row["#nodes (n)"] == 8
        assert row["#edges (m)"] == 28
        assert row["connected"] is True
        assert row["bipartite"] is False
        assert row["avg. degree"] == pytest.approx(7.0)
