"""Unit tests for the weighted :class:`Graph` container and the
``add_edges``/``remove_edges`` edge-case contract (consistent with
``from_edges``: self-loops raise, duplicates dedupe, conflicting duplicate
weights raise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphStructureError
from repro.graph.builders import (
    from_edge_array,
    from_edges,
    from_scipy_sparse,
    with_random_weights,
)
from repro.graph.generators import barabasi_albert_graph, path_graph


@pytest.fixture()
def triangle():
    return from_edges([(0, 1, 2.0), (1, 2, 0.5), (0, 2, 1.5)])


class TestConstruction:
    def test_basic_attributes(self, triangle):
        assert triangle.is_weighted
        assert triangle.num_edges == 3
        assert triangle.total_weight == pytest.approx(4.0)
        assert np.allclose(triangle.weighted_degrees, [3.5, 2.5, 2.0])
        assert triangle.weighted_degree(0) == pytest.approx(3.5)
        assert np.array_equal(triangle.degrees, [2, 2, 2])

    def test_unweighted_graph_reports_unit_weights(self):
        graph = path_graph(4)
        assert not graph.is_weighted
        assert graph.weights is None
        assert graph.total_weight == graph.num_edges
        assert np.array_equal(graph.weighted_degrees, graph.degrees.astype(float))
        assert np.array_equal(graph.edge_weight_array(), np.ones(3))
        assert graph.edge_weight(0, 1) == 1.0

    def test_edge_weight_lookup(self, triangle):
        assert triangle.edge_weight(1, 2) == 0.5
        assert triangle.edge_weight(2, 1) == 0.5
        with pytest.raises(GraphStructureError):
            path_graph(4).edge_weight(0, 3)

    def test_neighbor_weights_align_with_neighbors(self, triangle):
        neighbors = triangle.neighbors(1)
        weights = triangle.neighbor_weights(1)
        lookup = dict(zip(map(int, neighbors), weights))
        assert lookup == {0: 2.0, 2: 0.5}

    def test_nonpositive_weights_raise(self):
        with pytest.raises(GraphStructureError):
            from_edges([(0, 1, 0.0)])
        with pytest.raises(GraphStructureError):
            from_edges([(0, 1, -2.0)])
        with pytest.raises(GraphStructureError):
            from_edges([(0, 1, float("inf"))])

    def test_asymmetric_weight_arrays_rejected(self):
        indptr = np.array([0, 1, 2])
        indices = np.array([1, 0])
        with pytest.raises(GraphStructureError):
            from repro.graph.graph import Graph

            Graph(indptr, indices, np.array([1.0, 2.0]))

    def test_weights_shape_must_match_indices(self):
        from repro.graph.graph import Graph

        indptr = np.array([0, 1, 2])
        indices = np.array([1, 0])
        with pytest.raises(ValueError):
            Graph(indptr, indices, np.array([1.0]))

    def test_inline_and_keyword_weights_conflict(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1, 2.0)], weights=[3.0])

    def test_weights_keyword(self):
        graph = from_edges([(0, 1), (1, 2)], weights=[2.0, 4.0])
        assert graph.edge_weight(1, 2) == 4.0

    def test_duplicate_weighted_edges_dedupe_or_raise(self):
        ok = from_edges([(0, 1, 2.0), (1, 0, 2.0), (1, 2, 1.0)])
        assert ok.num_edges == 2
        with pytest.raises(GraphStructureError):
            from_edges([(0, 1, 2.0), (1, 0, 3.0)])

    def test_from_edge_array_no_dedup_still_rejects_duplicates(self):
        with pytest.raises(GraphStructureError):
            from_edge_array(
                np.array([[0, 1], [1, 0]]),
                weights=np.array([1.0, 1.0]),
                deduplicate=False,
            )

    def test_from_scipy_sparse_weighted(self):
        import scipy.sparse as sp

        adj = sp.csr_matrix(
            np.array([[0.0, 2.0, 0.0], [2.0, 0.0, 0.5], [0.0, 0.5, 0.0]])
        )
        graph = from_scipy_sparse(adj, weighted=True)
        assert graph.is_weighted
        assert graph.edge_weight(0, 1) == 2.0
        unweighted = from_scipy_sparse(adj)
        assert not unweighted.is_weighted


class TestMatrices:
    def test_adjacency_and_laplacian_use_weights(self, triangle):
        adjacency = triangle.adjacency_matrix().toarray()
        assert adjacency[0, 1] == 2.0 and adjacency[1, 2] == 0.5
        laplacian = triangle.laplacian_matrix().toarray()
        assert np.allclose(laplacian.sum(axis=1), 0.0)
        assert laplacian[0, 0] == pytest.approx(3.5)

    def test_transition_rows_are_weight_proportional(self, triangle):
        transition = triangle.transition_matrix().toarray()
        assert np.allclose(transition.sum(axis=1), 1.0)
        assert transition[0, 1] == pytest.approx(2.0 / 3.5)
        assert transition[0, 2] == pytest.approx(1.5 / 3.5)

    def test_stationary_distribution_weighted(self, triangle):
        pi = triangle.stationary_distribution()
        assert np.allclose(pi, triangle.weighted_degrees / (2 * triangle.total_weight))
        assert pi.sum() == pytest.approx(1.0)


class TestDerivedGraphs:
    def test_subgraph_preserves_weights(self, triangle):
        sub = triangle.subgraph([1, 2])
        assert sub.is_weighted
        assert sub.edge_weight(0, 1) == 0.5

    def test_with_weights_and_unweighted_round_trip(self):
        base = barabasi_albert_graph(30, 2, rng=3)
        weighted = with_random_weights(base, rng=5)
        assert weighted.is_weighted
        assert np.array_equal(weighted.indices, base.indices)
        # each arc and its reverse carry the same weight
        for u, v in list(weighted.edges())[:10]:
            assert weighted.edge_weight(u, v) == weighted.edge_weight(v, u)
        assert weighted.unweighted() == base

    def test_equality_and_hash_see_weights(self, triangle):
        same = from_edges([(0, 1, 2.0), (1, 2, 0.5), (0, 2, 1.5)])
        different = from_edges([(0, 1, 2.0), (1, 2, 0.5), (0, 2, 9.0)])
        assert triangle == same
        assert hash(triangle) == hash(same)
        assert triangle != different
        assert triangle != triangle.unweighted()


class TestAddRemoveEdgeCases:
    """The satellite contract: mutations behave like ``from_edges``."""

    def test_add_edges_self_loop_raises(self):
        with pytest.raises(GraphStructureError):
            path_graph(4).add_edges([(1, 1)])

    def test_remove_edges_self_loop_raises(self):
        with pytest.raises(GraphStructureError):
            path_graph(4).remove_edges([(1, 1)])

    def test_add_duplicate_edges_in_input_dedupe(self):
        graph = path_graph(4).add_edges([(0, 2), (2, 0), (0, 2)])
        assert graph.num_edges == 4

    def test_add_existing_edge_is_idempotent(self):
        graph = path_graph(4)
        assert graph.add_edges([(0, 1)]) == graph

    def test_add_conflicting_duplicate_weights_raise(self, triangle):
        with pytest.raises(GraphStructureError):
            triangle.add_edges([(0, 1, 5.0)])  # edge exists with weight 2.0
        with pytest.raises(GraphStructureError):
            path_graph(4).add_edges([(0, 2, 1.0), (0, 2, 2.0)])

    def test_add_weighted_edge_promotes_to_weighted(self):
        graph = path_graph(3).add_edges([(0, 2, 4.0)])
        assert graph.is_weighted
        assert graph.edge_weight(0, 2) == 4.0
        assert graph.edge_weight(0, 1) == 1.0  # existing edges keep weight 1

    def test_explicit_unit_weight_triple_promotes(self):
        # consistent with from_edges: an explicit (u, v, 1.0) makes the
        # result weighted even though the weight value is the default
        assert from_edges([(0, 1, 1.0), (1, 2, 1.0)]).is_weighted
        assert path_graph(3).add_edges([(0, 2, 1.0)]).is_weighted
        assert not path_graph(3).add_edges([(0, 2)]).is_weighted

    def test_add_edges_preserves_existing_weights(self):
        graph = from_edges([(0, 1, 2.0), (1, 2, 0.5), (2, 3, 1.5)])
        grown = graph.add_edges([(0, 3, 7.0)])
        assert grown.edge_weight(0, 1) == 2.0
        assert grown.edge_weight(0, 3) == 7.0

    def test_remove_edges_preserves_weights(self, triangle):
        reduced = triangle.remove_edges([(0, 1)])
        assert reduced.is_weighted
        assert reduced.num_edges == 2
        assert reduced.edge_weight(1, 2) == 0.5

    def test_remove_nonexistent_edge_raises(self):
        with pytest.raises(GraphStructureError):
            path_graph(4).remove_edges([(0, 3)])

    def test_remove_duplicate_entries_dedupe(self):
        reduced = path_graph(4).remove_edges([(0, 1), (1, 0)])
        assert reduced.num_edges == 2

    def test_add_out_of_range_node_raises(self):
        with pytest.raises(ValueError):
            path_graph(3).add_edges([(0, 99)])
