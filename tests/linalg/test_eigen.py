"""Unit tests for spectral quantities of the transition matrix."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    dumbbell_graph,
)
from repro.linalg.eigen import (
    SpectralInfo,
    power_iteration_lambda2,
    spectral_gap,
    spectral_radius_second,
    transition_eigenvalues,
)


def dense_transition_eigenvalues(graph):
    transition = graph.transition_matrix().toarray()
    return np.sort(np.real(np.linalg.eigvals(transition)))[::-1]


class TestTransitionEigenvalues:
    def test_complete_graph_closed_form(self):
        # K_n transition matrix has eigenvalues 1 and -1/(n-1) (multiplicity n-1)
        graph = complete_graph(12)
        info = transition_eigenvalues(graph)
        assert info.lambda_2 == pytest.approx(-1 / 11, abs=1e-9)
        assert info.lambda_n == pytest.approx(-1 / 11, abs=1e-9)
        assert info.lambda_max_abs == pytest.approx(1 / 11, abs=1e-9)

    def test_odd_cycle_closed_form(self):
        # cycle C_n: eigenvalues cos(2 pi k / n)
        graph = cycle_graph(9)
        info = transition_eigenvalues(graph)
        assert info.lambda_2 == pytest.approx(np.cos(2 * np.pi / 9), abs=1e-9)
        assert info.lambda_n == pytest.approx(np.cos(2 * np.pi * 4 / 9), abs=1e-9)

    def test_matches_dense_eigensolver(self):
        graph = barabasi_albert_graph(120, 4, rng=3)
        info = transition_eigenvalues(graph)
        dense = dense_transition_eigenvalues(graph)
        assert info.lambda_2 == pytest.approx(dense[1], abs=1e-8)
        assert info.lambda_n == pytest.approx(dense[-1], abs=1e-8)

    def test_sparse_path_matches_dense(self):
        # force the ARPACK branch with a low dense_threshold
        graph = barabasi_albert_graph(300, 5, rng=4)
        sparse_info = transition_eigenvalues(graph, dense_threshold=10, rng=0)
        dense_info = transition_eigenvalues(graph, dense_threshold=1000)
        assert sparse_info.lambda_max_abs == pytest.approx(
            dense_info.lambda_max_abs, abs=1e-6
        )

    def test_lambda_in_unit_interval(self, ba_small):
        lam = spectral_radius_second(ba_small)
        assert 0.0 < lam < 1.0

    def test_spectral_gap_complement(self, ba_small):
        assert spectral_gap(ba_small) == pytest.approx(
            1.0 - spectral_radius_second(ba_small)
        )

    def test_dumbbell_has_small_gap(self):
        # two cliques joined by a path mix slowly -> lambda close to 1
        graph = dumbbell_graph(8, 4)
        lam = spectral_radius_second(graph)
        assert lam > 0.9

    def test_spectral_info_dataclass(self):
        info = SpectralInfo(lambda_2=0.3, lambda_n=-0.7)
        assert info.lambda_max_abs == pytest.approx(0.7)
        assert info.spectral_gap == pytest.approx(0.3)


class TestPowerIteration:
    def test_matches_arpack(self):
        graph = barabasi_albert_graph(150, 5, rng=6)
        reference = transition_eigenvalues(graph)
        estimate = power_iteration_lambda2(graph, rng=1)
        expected = max(abs(reference.lambda_2), 0.0)
        # power iteration returns |lambda_2| of the normalised adjacency, i.e. the
        # second-largest magnitude after deflating the Perron vector
        assert estimate == pytest.approx(reference.lambda_max_abs, abs=5e-3)
