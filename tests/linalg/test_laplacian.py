"""Unit tests for matrix construction and the dense pseudo-inverse."""

import numpy as np
import pytest

from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.linalg.laplacian import (
    effective_resistance_from_pinv,
    incidence_matrix,
    laplacian_matrix,
    laplacian_pseudoinverse,
    normalized_laplacian_matrix,
    transition_matrix,
)


class TestMatrices:
    def test_laplacian_psd(self, complete8):
        laplacian = laplacian_matrix(complete8).toarray()
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1e-10

    def test_laplacian_nullspace_is_ones(self, grid4x4):
        laplacian = laplacian_matrix(grid4x4).toarray()
        ones = np.ones(grid4x4.num_nodes)
        np.testing.assert_allclose(laplacian @ ones, 0.0, atol=1e-12)

    def test_normalized_laplacian_eigen_range(self, complete8):
        norm_lap = normalized_laplacian_matrix(complete8).toarray()
        eigenvalues = np.linalg.eigvalsh(norm_lap)
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2 + 1e-10

    def test_transition_is_row_stochastic(self, grid4x4):
        transition = transition_matrix(grid4x4)
        np.testing.assert_allclose(np.asarray(transition.sum(axis=1)).ravel(), 1.0)

    def test_incidence_btb_is_laplacian(self, grid4x4):
        incidence = incidence_matrix(grid4x4)
        laplacian = laplacian_matrix(grid4x4)
        np.testing.assert_allclose(
            (incidence.T @ incidence).toarray(), laplacian.toarray()
        )

    def test_incidence_shape(self, complete8):
        incidence = incidence_matrix(complete8)
        assert incidence.shape == (complete8.num_edges, complete8.num_nodes)


class TestPseudoinverse:
    def test_pinv_matches_numpy(self, grid4x4):
        ours = laplacian_pseudoinverse(grid4x4)
        reference = np.linalg.pinv(laplacian_matrix(grid4x4).toarray())
        np.testing.assert_allclose(ours, reference, atol=1e-8)

    def test_pinv_symmetric(self, complete8):
        pinv = laplacian_pseudoinverse(complete8)
        np.testing.assert_allclose(pinv, pinv.T, atol=1e-10)

    def test_pinv_rows_sum_to_zero(self, complete8):
        pinv = laplacian_pseudoinverse(complete8)
        np.testing.assert_allclose(pinv.sum(axis=1), 0.0, atol=1e-10)

    def test_effective_resistance_path(self):
        graph = path_graph(5)
        pinv = laplacian_pseudoinverse(graph)
        assert effective_resistance_from_pinv(pinv, 0, 4) == pytest.approx(4.0)
        assert effective_resistance_from_pinv(pinv, 1, 3) == pytest.approx(2.0)

    def test_effective_resistance_complete(self):
        graph = complete_graph(10)
        pinv = laplacian_pseudoinverse(graph)
        assert effective_resistance_from_pinv(pinv, 2, 7) == pytest.approx(0.2)

    def test_effective_resistance_cycle(self):
        graph = cycle_graph(8)
        pinv = laplacian_pseudoinverse(graph)
        # r(i, j) at hop distance k on an n-cycle is k (n - k) / n
        assert effective_resistance_from_pinv(pinv, 0, 4) == pytest.approx(4 * 4 / 8)
        assert effective_resistance_from_pinv(pinv, 0, 1) == pytest.approx(1 * 7 / 8)

    def test_effective_resistance_star(self):
        graph = star_graph(5)
        pinv = laplacian_pseudoinverse(graph)
        assert effective_resistance_from_pinv(pinv, 0, 3) == pytest.approx(1.0)
        assert effective_resistance_from_pinv(pinv, 1, 2) == pytest.approx(2.0)

    def test_same_node_is_zero(self, complete8):
        pinv = laplacian_pseudoinverse(complete8)
        assert effective_resistance_from_pinv(pinv, 3, 3) == 0.0
