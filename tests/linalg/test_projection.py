"""Unit tests for random projection helpers."""

import numpy as np
import pytest

from repro.linalg.projection import (
    gaussian_projection_matrix,
    johnson_lindenstrauss_dimension,
    rademacher_projection_matrix,
)


class TestRademacher:
    def test_shape_and_values(self):
        matrix = rademacher_projection_matrix(10, 20, rng=1)
        assert matrix.shape == (10, 20)
        np.testing.assert_allclose(np.abs(matrix), 1 / np.sqrt(10))

    def test_reproducible(self):
        a = rademacher_projection_matrix(5, 7, rng=3)
        b = rademacher_projection_matrix(5, 7, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_norm_preservation_in_expectation(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(400)
        matrix = rademacher_projection_matrix(600, 400, rng=1)
        projected = matrix @ x
        assert np.linalg.norm(projected) ** 2 == pytest.approx(
            np.linalg.norm(x) ** 2, rel=0.2
        )

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            rademacher_projection_matrix(0, 5)


class TestGaussian:
    def test_shape(self):
        matrix = gaussian_projection_matrix(4, 9, rng=2)
        assert matrix.shape == (4, 9)

    def test_variance_scaling(self):
        matrix = gaussian_projection_matrix(2000, 3, rng=2)
        assert matrix.var() == pytest.approx(1 / 2000, rel=0.1)


class TestJLDimension:
    def test_formula(self):
        assert johnson_lindenstrauss_dimension(1000, 0.5, c=24.0) == int(
            np.ceil(24 * np.log(1000) / 0.25)
        )

    def test_decreases_with_epsilon(self):
        assert johnson_lindenstrauss_dimension(1000, 0.5) < johnson_lindenstrauss_dimension(
            1000, 0.1
        )

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            johnson_lindenstrauss_dimension(100, 1.5)
