"""Unit tests for the Laplacian CG solver."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.linalg.laplacian import laplacian_pseudoinverse
from repro.linalg.solvers import LaplacianSolver, solve_laplacian


class TestSolve:
    def test_solution_satisfies_system(self, ba_small):
        solver = LaplacianSolver(ba_small)
        rhs = np.zeros(ba_small.num_nodes)
        rhs[0], rhs[5] = 1.0, -1.0
        x = solver.solve(rhs)
        laplacian = ba_small.laplacian_matrix()
        np.testing.assert_allclose(laplacian @ x, rhs - rhs.mean(), atol=1e-7)
        assert solver.last_stats is not None
        assert solver.last_stats.converged

    def test_solution_zero_mean(self, ba_small):
        solver = LaplacianSolver(ba_small)
        rhs = np.zeros(ba_small.num_nodes)
        rhs[3], rhs[9] = 1.0, -1.0
        x = solver.solve(rhs)
        assert abs(x.mean()) < 1e-12

    def test_rhs_projected_if_not_orthogonal(self, ba_small):
        solver = LaplacianSolver(ba_small)
        rhs = np.ones(ba_small.num_nodes)  # entirely in the null space
        x = solver.solve(rhs)
        np.testing.assert_allclose(x, 0.0, atol=1e-9)

    def test_wrong_shape_rejected(self, ba_small):
        solver = LaplacianSolver(ba_small)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))

    def test_functional_helper(self, complete8):
        rhs = np.zeros(8)
        rhs[0], rhs[7] = 1.0, -1.0
        x = solve_laplacian(complete8, rhs)
        assert x[0] - x[7] == pytest.approx(0.25, abs=1e-9)


class TestEffectiveResistance:
    def test_path_distances(self):
        solver = LaplacianSolver(path_graph(6))
        assert solver.effective_resistance(0, 5) == pytest.approx(5.0, abs=1e-8)
        assert solver.effective_resistance(2, 4) == pytest.approx(2.0, abs=1e-8)

    def test_cycle_closed_form(self):
        solver = LaplacianSolver(cycle_graph(10))
        assert solver.effective_resistance(0, 5) == pytest.approx(2.5, abs=1e-8)

    def test_same_node(self, ba_small):
        assert LaplacianSolver(ba_small).effective_resistance(4, 4) == 0.0

    def test_matches_pseudoinverse(self, ba_small):
        solver = LaplacianSolver(ba_small)
        pinv = laplacian_pseudoinverse(ba_small)
        for s, t in [(0, 10), (3, 77), (50, 150)]:
            expected = pinv[s, s] + pinv[t, t] - 2 * pinv[s, t]
            assert solver.effective_resistance(s, t) == pytest.approx(expected, abs=1e-8)

    def test_potential_vector_drop(self, ba_small):
        solver = LaplacianSolver(ba_small)
        potential = solver.potential_vector(2, 9)
        assert potential[2] - potential[9] == pytest.approx(
            solver.effective_resistance(2, 9), abs=1e-9
        )

    def test_invalid_nodes(self, ba_small):
        solver = LaplacianSolver(ba_small)
        with pytest.raises(ValueError):
            solver.effective_resistance(0, ba_small.num_nodes)
