"""ResistanceClient fault handling: typed transient errors and retries."""

from __future__ import annotations

import socket

import pytest

from repro.fault import NO_RETRY, RetryPolicy
from repro.net.client import (
    BackpressureError,
    ClientError,
    ResistanceClient,
    TransientServerError,
)


def _dead_url():
    """A URL nothing listens on (bind+close to find a free port)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    return f"http://127.0.0.1:{port}"


class Flaky:
    def __init__(self, failures, exc):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, method, path, payload=None, timeout=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return {"ok": True, "method": method, "path": path}


class TestTransientMapping:
    def test_connection_refused_is_typed(self):
        client = ResistanceClient(_dead_url(), timeout=0.5, retry=NO_RETRY)
        with pytest.raises(TransientServerError) as excinfo:
            client.healthz()
        assert isinstance(excinfo.value, ClientError)  # stays catchable as before

    def test_metrics_maps_transient_too(self):
        client = ResistanceClient(_dead_url(), timeout=0.5, retry=NO_RETRY)
        with pytest.raises(TransientServerError):
            client.metrics()

    def test_wait_ready_times_out_with_clear_error(self):
        client = ResistanceClient(_dead_url(), timeout=0.5, retry=NO_RETRY)
        with pytest.raises(ClientError, match="not ready after"):
            client.wait_ready(timeout=0.3, interval=0.05)


class TestRetryBehaviour:
    def _client(self, **kwargs):
        kwargs.setdefault(
            "retry", RetryPolicy(max_attempts=3, base_seconds=0.001, jitter=False)
        )
        return ResistanceClient("http://example.invalid", **kwargs)

    def test_idempotent_request_retries_transient_then_succeeds(self):
        client = self._client()
        flaky = Flaky(2, TransientServerError("refused"))
        client._request_once = flaky
        assert client.query(1, 2, 0.5)["ok"] is True
        assert flaky.calls == 3

    def test_exhausted_retries_raise_the_transient_error(self):
        client = self._client()
        flaky = Flaky(10, TransientServerError("refused"))
        client._request_once = flaky
        with pytest.raises(TransientServerError):
            client.stats()
        assert flaky.calls == 3

    def test_update_is_never_retried(self):
        client = self._client()
        flaky = Flaky(10, TransientServerError("refused"))
        client._request_once = flaky
        with pytest.raises(TransientServerError):
            client.update(add=[(0, 1)])
        assert flaky.calls == 1  # a retried update could double-apply

    def test_backpressure_not_retried_by_default(self):
        client = self._client()
        flaky = Flaky(10, BackpressureError("shed", retry_after=0.001))
        client._request_once = flaky
        with pytest.raises(BackpressureError):
            client.query(1, 2, 0.5)
        assert flaky.calls == 1

    def test_backpressure_retried_when_opted_in_honoring_hint(self):
        client = self._client(
            retry=RetryPolicy(
                max_attempts=3, base_seconds=0.001, max_backoff_seconds=0.01
            ),
            retry_backpressure=True,
        )
        flaky = Flaky(1, BackpressureError("shed", retry_after=0.001))
        client._request_once = flaky
        assert client.query(1, 2, 0.5)["ok"] is True
        assert flaky.calls == 2

    def test_http_errors_are_not_retried(self):
        client = self._client()
        flaky = Flaky(10, ClientError("bad request", status=400))
        client._request_once = flaky
        with pytest.raises(ClientError):
            client.query(1, 2, 0.5)
        assert flaky.calls == 1
