"""Direct unit tests of the network front-end's deadline handling.

These bypass sockets entirely: a :class:`NetServer` is constructed but never
started, and ``_work_query`` / ``_partial_answer`` / ``_degraded_answer`` are
called on the worker-thread path with synthetic arrival times.  Covered here:

* the expired-deadline degrade to a ``partial: true`` sketch envelope,
* the 504 branch when no sketch exists to degrade to,
* the 503 + ``Retry-After`` branch when the engine tier is down sketchless,
* remaining-budget arithmetic (``_deadline_remaining``),
* the adaptive planner's anytime partial flowing through ``/query`` payloads.
"""

from __future__ import annotations

import time

import pytest

from repro.net.server import NetServer, NetServerConfig, _Reject
from repro.graph.generators import barabasi_albert_graph
from repro.service.planner import PlannerConfig
from repro.service.server import ResistanceService, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(60, 3, rng=8)


def _server(graph, *, service_config=None, **net_kwargs):
    service = ResistanceService(
        graph, config=service_config or ServiceConfig(), rng=7
    )
    net_kwargs.setdefault("use_shared_memory", False)
    server = NetServer(service, NetServerConfig(**net_kwargs))
    return server, service


class TestDeadlineExpiry:
    def test_expired_deadline_serves_partial_envelope(self, graph):
        server, service = _server(graph)
        payload = server._work_query(
            {"s": 0, "t": 1, "epsilon": 0.3, "deadline_ms": 0},
            arrival=time.monotonic() - 1.0,
        )
        assert payload["partial"] is True
        assert payload["source"] == "sketch"
        assert payload["method"] == "sketch-bound"
        assert payload["lower"] - 1e-12 <= payload["value"] <= payload["upper"] + 1e-12
        assert payload["half_width"] == pytest.approx(
            (payload["upper"] - payload["lower"]) / 2.0
        )
        assert payload["epoch"] == service.epoch
        assert server.stats.partials == 1
        # the engine never ran: a degrade costs zero walk steps
        assert service.engine.stats.total_steps == 0

    def test_unexpired_deadline_answers_normally(self, graph):
        server, _ = _server(graph)
        payload = server._work_query(
            {"s": 0, "t": 1, "epsilon": 0.3, "deadline_ms": 60_000},
            arrival=time.monotonic(),
        )
        assert payload["partial"] is False
        assert server.stats.partials == 0

    def test_expired_deadline_without_sketch_is_504(self, graph):
        server, _ = _server(graph, service_config=ServiceConfig(use_sketch=False))
        with pytest.raises(_Reject) as excinfo:
            server._work_query(
                {"s": 0, "t": 1, "epsilon": 0.3, "deadline_ms": 0},
                arrival=time.monotonic() - 1.0,
            )
        assert excinfo.value.status == 504
        assert excinfo.value.payload["error"] == "deadline-exceeded"
        assert server.stats.partials == 0


class TestDeadlineRemaining:
    def test_no_deadline_means_unbounded(self, graph):
        server, _ = _server(graph)
        assert server._deadline_remaining({}, arrival=time.monotonic()) is None

    def test_remaining_budget_counts_down_from_arrival(self, graph):
        server, _ = _server(graph)
        arrival = time.monotonic() - 0.05
        remaining = server._deadline_remaining({"deadline_ms": 1000}, arrival)
        assert 0.0 < remaining <= 0.95

    def test_remaining_budget_clamps_at_zero(self, graph):
        server, _ = _server(graph)
        arrival = time.monotonic() - 1.0
        assert server._deadline_remaining({"deadline_ms": 10}, arrival) == 0.0

    def test_default_deadline_from_config(self, graph):
        server, _ = _server(graph, default_deadline_ms=500)
        remaining = server._deadline_remaining({}, arrival=time.monotonic())
        assert remaining is not None and remaining <= 0.5


class TestDegradedAnswers:
    def test_degraded_answer_marks_cause(self, graph):
        server, _ = _server(graph)
        payload = server._degraded_answer(0, 1, 0.3, RuntimeError("breaker open"))
        assert payload["partial"] is True
        assert payload["degraded"] == "engine-unavailable"
        assert server.stats.degraded == 1 and server.stats.partials == 1

    def test_degraded_without_sketch_is_503_with_retry_after(self, graph):
        from repro.fault import CircuitOpenError

        server, _ = _server(graph, service_config=ServiceConfig(use_sketch=False))
        with pytest.raises(_Reject) as excinfo:
            server._degraded_answer(0, 1, 0.3, CircuitOpenError(7.2))
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"] == "engine-unavailable"
        assert excinfo.value.headers["Retry-After"] == "7"
        assert server.stats.degraded == 0  # nothing was served

    def test_degraded_without_sketch_and_no_retry_hint(self, graph):
        server, _ = _server(graph, service_config=ServiceConfig(use_sketch=False))
        with pytest.raises(_Reject) as excinfo:
            server._degraded_answer(0, 1, 0.3, None)
        assert excinfo.value.status == 503
        assert "Retry-After" not in excinfo.value.headers


class TestAdaptiveAnytimeOverHttp:
    def test_anytime_partial_flows_through_query_payload(self, graph):
        """An adaptive service under a tight-but-live budget answers with the
        planner's anytime envelope — ``partial: true`` plus ``plan`` — rather
        than the front-end's own expiry degrade."""
        server, service = _server(
            graph,
            service_config=ServiceConfig(
                planner="adaptive",
                planner_config=PlannerConfig(
                    exact_max_nodes=0, refine_in_background=False
                ),
            ),
        )
        # calibrate the engine as catastrophically slow so no budget fits it
        service.planner.observe_engine("geer", 0, 1, 0.5, 1_000.0)
        # a pair whose envelope cannot meet ε=0.01: forces anytime, not sketch
        pair = next(
            (s, t)
            for s in range(graph.num_nodes)
            for t in range(s + 1, graph.num_nodes)
            if (service.sketch.gap(s, t) or 0.0) > 0.05
        )
        payload = server._work_query(
            {"s": pair[0], "t": pair[1], "epsilon": 0.01, "deadline_ms": 50},
            arrival=time.monotonic(),
        )
        assert payload["partial"] is True
        assert payload["plan"] == "anytime"
        assert payload["source"] == "sketch"
        assert payload["refining"] is False  # refinement disabled in config
        assert payload["lower"] <= payload["value"] <= payload["upper"]
        assert server.stats.partials == 1
        assert service.planner.stats.tier_decisions["anytime"] == 1

    def test_adaptive_without_deadline_is_never_partial(self, graph):
        server, service = _server(
            graph,
            service_config=ServiceConfig(
                planner="adaptive",
                planner_config=PlannerConfig(refine_in_background=False),
            ),
        )
        payload = server._work_query(
            {"s": 2, "t": 9, "epsilon": 0.3}, arrival=time.monotonic()
        )
        assert payload["partial"] is False
        assert "plan" in payload
        assert service.planner.stats.decisions == 1
