"""SharedWorkerPool: no-pickling dispatch, bit-identity, epoch flips."""

from __future__ import annotations

import pytest

from repro.core.engine import QueryEngine
from repro.exceptions import StaleEpochError
from repro.graph.delta import EdgeDelta
from repro.graph.generators import barabasi_albert_graph
from repro.net.pool import SharedWorkerPool
from repro.net.shm import install_shared_context, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing shared memory unavailable"
)

PAIRS = [(0, 40), (3, 99), (17, 71), (5, 60), (2, 88), (50, 110)]
EPSILON = 0.2


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 4, rng=5)


def _fresh_shared_engine(graph, seed=42):
    engine = QueryEngine(graph, rng=seed)
    shared = install_shared_context(engine.context)
    assert shared is not None
    return engine, shared


def _pool_for(engine, shared, workers=2):
    context = engine.context
    return SharedWorkerPool(
        shared,
        workers=workers,
        delta=context.delta,
        num_batches=context.num_batches,
        budget=context.budget,
    )


def test_process_payload_carries_handle_not_graph(graph):
    """The process-executor payload attaches by handle instead of pickling."""
    engine, shared = _fresh_shared_engine(graph)
    try:
        plan = engine.plan(PAIRS, EPSILON)
        payload = plan._process_payload()
        assert payload["shared_handle"] is shared.handle
        assert "graph" not in payload
    finally:
        shared.retire()

    plain = QueryEngine(graph, rng=42)
    payload = plain.plan(PAIRS, EPSILON)._process_payload()
    assert "shared_handle" not in payload
    assert payload["graph"] is plain.graph


def test_process_executor_matches_thread_executor(graph):
    """plan.execute(executor="process") over shm == thread executor, bitwise."""
    thread_engine = QueryEngine(graph, rng=42)
    thread_batch = thread_engine.plan(PAIRS, EPSILON).execute(
        workers=2, executor="thread"
    )
    proc_engine, shared = _fresh_shared_engine(graph)
    try:
        proc_batch = proc_engine.plan(PAIRS, EPSILON).execute(
            workers=2, executor="process"
        )
    finally:
        shared.retire()
    for ours, theirs in zip(thread_batch, proc_batch):
        assert ours.value.hex() == theirs.value.hex()


@pytest.mark.parametrize("method", ["geer", "smm"])
def test_pool_matches_thread_executor(graph, method):
    thread_engine = QueryEngine(graph, rng=42)
    thread_batch = thread_engine.plan(PAIRS, EPSILON, method=method).execute(
        workers=2, executor="thread"
    )
    engine, shared = _fresh_shared_engine(graph)
    try:
        with _pool_for(engine, shared) as pool:
            pool.warm()
            batch = pool.execute_plan(engine.plan(PAIRS, EPSILON, method=method))
        assert batch.executor == "shm-pool"
        for ours, theirs in zip(thread_batch, batch):
            assert ours.value.hex() == theirs.value.hex()
    finally:
        shared.retire()


def test_pool_results_identical_across_worker_counts(graph):
    values = []
    for workers in (1, 3):
        engine, shared = _fresh_shared_engine(graph)
        try:
            with _pool_for(engine, shared, workers=workers) as pool:
                batch = pool.execute_plan(engine.plan(PAIRS, EPSILON))
            values.append([result.value.hex() for result in batch])
        finally:
            shared.retire()
    assert values[0] == values[1]


def test_pool_falls_back_without_handle(graph):
    """No published segments -> transparent thread-executor fallback."""
    engine = QueryEngine(graph, rng=42)
    assert engine.context.shared_handle is None
    with SharedWorkerPool(workers=2) as pool:
        batch = pool.execute_plan(engine.plan(PAIRS, EPSILON))
    assert batch.executor == "thread"
    reference = QueryEngine(graph, rng=42).plan(PAIRS, EPSILON).execute(
        workers=2, executor="thread"
    )
    for ours, theirs in zip(reference, batch):
        assert ours.value.hex() == theirs.value.hex()


def test_pool_rp_method_stays_in_process(graph):
    """RP consumes the session stream, so it must not cross processes."""
    engine, shared = _fresh_shared_engine(graph)
    try:
        with _pool_for(engine, shared) as pool:
            batch = pool.execute_plan(engine.plan(PAIRS[:2], 0.5, method="rp"))
        assert batch.executor == "thread"
    finally:
        shared.retire()


def test_pool_epoch_flip_after_update(graph):
    engine, shared = _fresh_shared_engine(graph)
    with _pool_for(engine, shared) as pool:
        first = pool.execute_plan(engine.plan(PAIRS, EPSILON))
        assert len(first) == len(PAIRS)

        stale_plan = engine.plan(PAIRS, EPSILON)
        engine.apply_update(EdgeDelta(inserts=((0, 100),)))
        with pytest.raises(StaleEpochError):
            pool.execute_plan(stale_plan)

        second_shared = install_shared_context(engine.context)
        assert second_shared is not None
        pool.flip(second_shared)
        shared.retire()
        assert pool.current_epoch == engine.epoch

        second = pool.execute_plan(engine.plan(PAIRS, EPSILON))
        assert second.executor == "shm-pool"

        # post-flip results equal a cold session on the updated graph
        cold = QueryEngine(engine.graph, rng=0)
        assert len(second) == len(PAIRS)
        assert cold.graph.num_edges == engine.graph.num_edges
        second_shared.retire()


def test_pool_pins_epoch_during_dispatch(graph):
    """Retiring the served epoch mid-flight must not unlink under the batch."""
    engine, shared = _fresh_shared_engine(graph)
    with _pool_for(engine, shared) as pool:
        pool.warm()
        batch = pool.execute_plan(engine.plan(PAIRS, EPSILON))
        assert len(batch) == len(PAIRS)
        # after dispatch returned there are no outstanding pins
        assert shared.pins == 0
    shared.retire()
    assert shared.unlinked
