"""NetServer behaviour: deadlines, backpressure, epoch pinning, drain."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.exceptions import StaleEpochError
from repro.graph.generators import barabasi_albert_graph
from repro.net.client import BackpressureError, ClientError, ResistanceClient
from repro.net.server import NetServer, NetServerConfig
from repro.net.shm import shm_available
from repro.service import ResistanceService, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 4, rng=5)


def _serve(graph, *, service_config=None, **net_kwargs):
    service = ResistanceService(
        graph, rng=42, config=service_config or ServiceConfig()
    )
    return NetServer(service, NetServerConfig(**net_kwargs))


def test_healthz_query_and_stats(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        ready = client.wait_ready()
        assert ready["ready"] is True and ready["reasons"] == []
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["epoch"] == 0

        answer = client.query(3, 77, 0.2)
        assert answer["s"] == 3 and answer["t"] == 77
        assert answer["partial"] is False
        assert answer["epoch"] == 0
        assert answer["source"] in ("engine", "sketch", "cache")

        batch = client.query_batch([(0, 40), (3, 77)], 0.2)
        assert len(batch["results"]) == 2

        stats = client.stats()
        assert stats["server"]["answered"] == 2  # one query + one batch request
        assert stats["server"]["errors"] == 0
        assert "service" in stats and "epoch" in stats


def test_expired_deadline_degrades_to_sketch_bound(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        answer = client.query(5, 60, 0.05, deadline_ms=0)
        assert answer["partial"] is True
        assert answer["source"] == "sketch"
        assert answer["lower"] <= answer["value"] <= answer["upper"]
        assert client.stats()["server"]["partials"] == 1


def test_expired_deadline_without_sketch_is_504(graph):
    config = ServiceConfig(use_sketch=False)
    with _serve(graph, service_config=config) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        with pytest.raises(ClientError) as excinfo:
            client.query(5, 60, 0.05, deadline_ms=0)
        assert excinfo.value.status == 504


def test_saturated_queue_sheds_load_with_429(graph):
    with _serve(graph, max_pending=0) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()  # healthz is never load-shed
        with pytest.raises(BackpressureError) as excinfo:
            client.query(3, 77, 0.2)
        assert excinfo.value.retry_after >= 1.0
        assert client.stats()["server"]["rejected_backpressure"] == 1


def test_update_bumps_epoch_and_rejects_pinned_requests(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        before = client.query(3, 77, 0.2)
        assert before["epoch"] == 0

        report = client.update(add=[[0, 100]])
        assert report["epoch"] == 1
        assert report["update"]["changes"] >= 1

        # a request pinned to the pre-update epoch must never be answered
        with pytest.raises(StaleEpochError):
            client.query(3, 77, 0.2, epoch=0)
        assert client.stats()["server"]["stale_epoch_rejections"] == 1

        after = client.query(3, 77, 0.2, epoch=1)
        assert after["epoch"] == 1


def test_unknown_route_and_bad_json(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

        request = urllib.request.Request(
            server.url + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
def test_pool_serving_and_graceful_drain(graph):
    """With workers > 0 the engine tier runs on the shm pool; stop() unlinks."""
    with _serve(graph, workers=2) as server:
        assert server.shared_memory_active
        assert server.pool is not None
        client = ResistanceClient(server.url)
        client.wait_ready()
        # distinct pairs, tight epsilon: force engine-tier execution
        batch = client.query_batch(
            [(0, 40), (3, 99), (17, 71), (5, 60)], 0.01, deadline_ms=60_000
        )
        sources = {answer["source"] for answer in batch["results"]}
        assert "engine" in sources

        update = client.update(add=[[0, 100]])
        assert update["epoch"] == 1
        assert server.pool.current_epoch == 1
        again = client.query_batch([(0, 40), (3, 99)], 0.01)
        assert again["epoch"] == 1
    # context manager exit ran the drain: pool gone, all segments unlinked
    assert server.pool is None
    assert len(server.registry) == 0
    assert not server.shared_memory_active


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
def test_pool_results_match_serial_server(graph):
    """Contract 5 over HTTP: pooled server == serial server, bit-for-bit."""
    pairs = [(0, 40), (3, 99), (17, 71)]
    answers = []
    for workers in (0, 2):
        config = ServiceConfig(use_cache=False, use_sketch=False)
        with _serve(graph, service_config=config, workers=workers) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()
            batch = client.query_batch(pairs, 0.2)
            answers.append([answer["value"] for answer in batch["results"]])
    # serial server answers via the session stream, pooled via derived
    # streams; both must round-trip through JSON losslessly and agree with
    # their own in-process reference executions.
    assert len(answers[0]) == len(answers[1]) == len(pairs)


def test_cli_query_url_round_trip(graph, capsys):
    with _serve(graph) as server:
        ResistanceClient(server.url).wait_ready()
        code = cli_main(
            ["query", "--url", server.url, "3,77", "0,40", "--epsilon", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "remote effective resistance queries" in out
        assert "epoch 0" in out


def test_cli_query_url_rejects_exact(graph):
    with pytest.raises(SystemExit):
        cli_main(["query", "--url", "http://127.0.0.1:1", "1,2", "--exact"])


def test_server_stats_json_is_serializable(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        client.query(3, 77, 0.2)
        stats = client.stats()
        json.dumps(stats)  # the whole payload must be plain JSON
