"""Self-healing SharedWorkerPool: Contract 7 — recovery never changes results.

Every task seed derives from the task's input position (``derive_seed``),
never from which worker or attempt ran it, so shards re-executed after a
worker death must reproduce their results hex-exactly.  These tests kill
real fork workers (via the ``pool:worker_crash`` failpoint and raw SIGKILL)
and compare against unharmed runs.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import Future

import pytest

from repro.core.engine import QueryEngine
from repro.exceptions import EngineUnavailableError
from repro.fault import FAULTS, FailpointTriggered
from repro.net.pool import PoolCrashError, SharedWorkerPool
from repro.net.shm import SegmentError, attach_context, install_shared_context, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing shared memory unavailable"
)

PAIRS = [(0, 40), (3, 99), (17, 71), (5, 60), (2, 88), (50, 110)]
EPSILON = 0.2


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture(scope="module")
def graph():
    from repro.graph.generators import barabasi_albert_graph

    return barabasi_albert_graph(120, 4, rng=5)


def _run_batch(graph, *, arm=None, warm_kill=False, **pool_kwargs):
    """One pool batch on a fresh engine/epoch; returns (hex values, summary).

    Fresh everything per run: executing a plan advances session stream
    state, so determinism comparisons must be run-vs-run, never plan-reuse.
    """
    engine = QueryEngine(graph, rng=42)
    shared = install_shared_context(engine.context)
    assert shared is not None
    try:
        with SharedWorkerPool(
            shared,
            workers=2,
            delta=engine.context.delta,
            num_batches=engine.context.num_batches,
            budget=engine.context.budget,
            **pool_kwargs,
        ) as pool:
            pool.warm()
            if warm_kill:
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                time.sleep(0.05)
            if arm:
                FAULTS.arm_from_string(arm)
            batch = pool.execute_plan(engine.plan(PAIRS, EPSILON))
            values = [result.value.hex() for result in batch]
            return values, pool.summary()
    finally:
        FAULTS.reset()
        shared.retire()


class TestContractSeven:
    def test_injected_crash_mid_dispatch_is_bit_identical(self, graph):
        baseline, base_stats = _run_batch(graph)
        assert base_stats["respawns"] == 0
        harmed, stats = _run_batch(graph, arm="pool:worker_crash")
        assert harmed == baseline
        assert stats["injected_crashes"] == 1
        assert stats["respawns"] >= 1
        assert stats["reexecuted_shards"] >= 1
        assert stats["recovery_seconds"] > 0

    def test_sigkill_between_batches_heals_via_heartbeat(self, graph):
        baseline, _ = _run_batch(graph)
        harmed, stats = _run_batch(graph, warm_kill=True)
        assert harmed == baseline
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] >= 1

    def test_crash_during_and_between_batches_still_identical(self, graph):
        baseline, _ = _run_batch(graph)
        harmed, stats = _run_batch(graph, warm_kill=True, arm="pool:worker_crash")
        assert harmed == baseline
        assert stats["worker_deaths"] >= 1
        assert stats["injected_crashes"] == 1


class TestRespawnBudget:
    def test_pool_crash_error_when_budget_exhausted(self, graph):
        with pytest.raises(PoolCrashError) as excinfo:
            _run_batch(graph, arm="pool:worker_crash=10", max_respawns=1)
        assert excinfo.value.attempts == 1
        assert excinfo.value.lost_shards >= 1
        # the breaker counts this toward tripping the engine tier
        assert isinstance(excinfo.value, EngineUnavailableError)

    def test_zero_respawns_fails_on_first_death(self, graph):
        with pytest.raises(PoolCrashError) as excinfo:
            _run_batch(graph, arm="pool:worker_crash=10", max_respawns=0)
        assert excinfo.value.attempts == 0


class TestHeartbeat:
    def test_heartbeat_reports_healthy_pool(self, graph):
        engine = QueryEngine(graph, rng=42)
        shared = install_shared_context(engine.context)
        try:
            with SharedWorkerPool(shared, workers=2) as pool:
                pool.warm()
                beat = pool.heartbeat()
                assert beat["healthy"] and beat["dead_workers"] == 0
        finally:
            shared.retire()

    def test_heartbeat_detects_without_healing(self, graph):
        engine = QueryEngine(graph, rng=42)
        shared = install_shared_context(engine.context)
        try:
            with SharedWorkerPool(shared, workers=2) as pool:
                pool.warm()
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                time.sleep(0.05)
                beat = pool.heartbeat(heal=False)
                assert not beat["healthy"]
                assert pool.summary()["respawns"] == 0  # observation only
        finally:
            shared.retire()


class TestRunShardsClassification:
    """The recovery loop's failure taxonomy, driven with synthetic futures."""

    def _pool(self):
        return SharedWorkerPool(workers=1, max_respawns=2)

    def test_injected_shard_fault_reexecutes_without_counting_a_death(self):
        attempts = []

        def submit(shard):
            future = Future()
            if len(attempts) == 0:
                attempts.append("fail")
                future.set_exception(FailpointTriggered("walk:chunk_fault"))
            else:
                attempts.append("ok")
                future.set_result(([(0, "result")], {"pid": 0.0}))
            return future

        with self._pool() as pool:
            outputs = pool._run_shards([["task"]], submit)
        assert outputs == [[(0, "result")]]
        summary = pool.summary()
        assert summary["reexecuted_shards"] == 1
        assert summary["respawns"] == 1
        assert summary["worker_deaths"] == 0  # the worker survived the fault

    def test_shard_deadline_flags_hung_workers(self):
        rounds = []

        def submit(shard):
            future = Future()
            if not rounds:
                rounds.append("hung")  # never completes -> deadline trips
            else:
                rounds.append("ok")
                future.set_result(([(0, "result")], {"pid": 0.0}))
            return future

        with self._pool() as pool:
            pool.shard_deadline_seconds = 0.05
            outputs = pool._run_shards([["task"]], submit)
        assert outputs == [[(0, "result")]]
        summary = pool.summary()
        assert summary["shard_timeouts"] == 1
        assert summary["worker_deaths"] == 1

    def test_unrecognised_worker_exception_propagates(self):
        def submit(shard):
            future = Future()
            future.set_exception(ValueError("a real bug"))
            return future

        with self._pool() as pool:
            with pytest.raises(ValueError, match="a real bug"):
                pool._run_shards([["task"]], submit)


def test_shm_attach_fail_failpoint(graph):
    """``shm:attach_fail`` makes attach_context raise a typed SegmentError."""
    engine = QueryEngine(graph, rng=42)
    shared = install_shared_context(engine.context)
    try:
        FAULTS.arm("shm:attach_fail")
        with pytest.raises(SegmentError, match="shm:attach_fail"):
            attach_context(shared.handle)
        # the failpoint is times:1 — the next attach succeeds (self-heal)
        attached = attach_context(shared.handle)
        attached.close()
    finally:
        FAULTS.reset()
        shared.retire()
