"""NetServer fault behaviour: /readyz, degraded answers, injected latency."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import EngineUnavailableError
from repro.fault import CircuitOpenError, FAULTS
from repro.graph.generators import barabasi_albert_graph
from repro.net.client import ClientError, ResistanceClient
from repro.net.server import NetServer, NetServerConfig
from repro.service import ResistanceService, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 4, rng=5)


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


def _serve(graph, *, service_config=None, **net_kwargs):
    service = ResistanceService(
        graph, rng=42, config=service_config or ServiceConfig()
    )
    return NetServer(service, NetServerConfig(**net_kwargs))


def _trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestReadyz:
    def test_ready_server_reports_ready(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            ready = client.wait_ready()
            assert ready["ready"] is True
            assert ready["reasons"] == []
            assert ready["breaker"] == "closed"

    def test_open_breaker_makes_replica_not_ready(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()
            _trip(server.service.breaker)
            with pytest.raises(ClientError) as excinfo:
                client.readyz()
            assert excinfo.value.status == 503
            assert "breaker-open" in excinfo.value.payload["reasons"]
            # liveness is unaffected: the process is still up
            assert client.healthz()["status"] == "ok"
            server.service.breaker.record_success()
            assert client.readyz()["ready"] is True


class TestDegradedAnswers:
    def test_engine_failure_degrades_to_sketch_envelope(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()

            def broken_query(*args, **kwargs):
                raise EngineUnavailableError("engine tier is down")

            server.service.query = broken_query
            answer = client.query(3, 77, 0.2)
            assert answer["partial"] is True
            assert answer["degraded"] == "engine-unavailable"
            assert answer["lower"] <= answer["value"] <= answer["upper"]
            stats = client.stats()
            assert stats["tiers"]["degraded"] == 1
            assert "repro_degraded_answers_total 1" in client.metrics()

    def test_engine_failure_degrades_whole_batch(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()

            def broken_query_many(*args, **kwargs):
                raise EngineUnavailableError("engine tier is down")

            server.service.query_many = broken_query_many
            batch = client.query_batch([(0, 40), (3, 77)], 0.2)
            assert len(batch["results"]) == 2
            assert all(r["degraded"] == "engine-unavailable" for r in batch["results"])

    def test_no_sketch_means_503_with_cause(self, graph):
        config = ServiceConfig(use_sketch=False)
        with _serve(graph, service_config=config) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()

            def broken_query(*args, **kwargs):
                raise CircuitOpenError(5.0)

            server.service.query = broken_query
            with pytest.raises(ClientError) as excinfo:
                client.query(3, 77, 0.2)
            assert excinfo.value.status == 503
            assert excinfo.value.payload["error"] == "engine-unavailable"

    def test_open_breaker_short_circuits_before_the_engine(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()
            server.pool = object()  # breaker gating applies to pooled replicas

            def must_not_run(*args, **kwargs):  # pragma: no cover - the assertion
                raise AssertionError("engine called while breaker open")

            server.service.query = must_not_run
            _trip(server.service.breaker)
            answer = client.query(3, 77, 0.2)
            assert answer["degraded"] == "engine-unavailable"
            server.pool = None


class TestSlowResponseFailpoint:
    def test_net_slow_response_stalls_once(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()
            FAULTS.arm("net:slow_response", "times:1+delay_ms:200")
            started = time.perf_counter()
            client.query(3, 77, 0.2)
            stalled = time.perf_counter() - started
            assert stalled >= 0.19
            # times:1 exhausted — the next request is not stalled
            started = time.perf_counter()
            client.query(3, 77, 0.2)
            assert time.perf_counter() - started < 0.19

    def test_stats_expose_armed_failpoints(self, graph):
        with _serve(graph) as server:
            client = ResistanceClient(server.url)
            client.wait_ready()
            FAULTS.arm("net:slow_response", "delay_ms:1")
            summary = server.service.summary()
            assert "net:slow_response" in summary["fault"]["failpoints"]
            assert summary["fault"]["breaker"]["state"] == "closed"
