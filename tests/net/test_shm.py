"""Shared-memory segment lifecycle and the zero-copy attach contract."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.graph.builders import with_random_weights
from repro.graph.delta import EdgeDelta
from repro.graph.generators import barabasi_albert_graph
from repro.net.shm import (
    SegmentError,
    SharedContextRegistry,
    StaleSegmentError,
    attach_context,
    install_shared_context,
    publish_context,
    shm_available,
)
from repro.service.sketch import LandmarkSketchStore

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing shared memory unavailable"
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 4, rng=5)


@pytest.fixture(scope="module")
def weighted_graph():
    return with_random_weights(barabasi_albert_graph(80, 3, rng=6), rng=6)


def test_publish_attach_bit_identity(graph):
    """Queries on the attached context are hex-identical to the in-process ones."""
    engine = QueryEngine(graph, rng=42)
    shared = publish_context(engine.context)
    try:
        with attach_context(shared.handle, rng=42) as attached:
            remote = QueryEngine(context=attached.context)
            for s, t in [(0, 50), (3, 99), (17, 71)]:
                ours = engine.query(s, t, 0.2)
                theirs = remote.query(s, t, 0.2)
                assert ours.value.hex() == theirs.value.hex()
    finally:
        shared.retire()
    assert shared.unlinked


def test_attached_views_are_zero_copy_and_read_only(graph):
    engine = QueryEngine(graph, rng=1)
    shared = publish_context(engine.context)
    try:
        with attach_context(shared.handle) as attached:
            indptr = attached.view("indptr")
            assert not indptr.flags.writeable
            assert not indptr.flags.owndata  # a view over the segment buffer
            np.testing.assert_array_equal(indptr, graph.indptr)
            np.testing.assert_array_equal(attached.view("indices"), graph.indices)
            # the rebuilt graph exposes the same buffers, not copies
            assert attached.context.graph.num_nodes == graph.num_nodes
            assert attached.context.graph.num_edges == graph.num_edges
    finally:
        shared.retire()


def test_weighted_roundtrip_shares_alias_tables(weighted_graph):
    from repro.sampling.walks import _build_alias_tables

    engine = QueryEngine(weighted_graph, rng=3)
    shared = publish_context(engine.context)
    try:
        assert shared.handle.weighted
        with attach_context(shared.handle, rng=3) as attached:
            remote_graph = attached.context.graph
            assert remote_graph.is_weighted
            np.testing.assert_array_equal(remote_graph.weights, weighted_graph.weights)
            np.testing.assert_array_equal(
                remote_graph.weighted_degrees, weighted_graph.weighted_degrees
            )
            prob, alias = _build_alias_tables(weighted_graph)
            remote_prob, remote_alias = _build_alias_tables(remote_graph)
            np.testing.assert_array_equal(prob, remote_prob)
            np.testing.assert_array_equal(alias, remote_alias)
    finally:
        shared.retire()


def test_attach_refuses_stale_fingerprint(graph):
    engine = QueryEngine(graph, rng=1)
    shared = publish_context(engine.context)
    try:
        forged = dataclasses.replace(shared.handle, fingerprint="0" * 16)
        with pytest.raises(StaleSegmentError):
            attach_context(forged, expected_fingerprint=engine.context.lineage)
    finally:
        shared.retire()


def test_refcounts_defer_unlink_until_unpinned(graph):
    engine = QueryEngine(graph, rng=1)
    shared = publish_context(engine.context)
    shared.pin()
    shared.retire()
    assert shared.retired and not shared.unlinked  # a lease is outstanding
    # the segments must still be attachable while pinned
    with attach_context(shared.handle):
        pass
    shared.unpin()
    assert shared.unlinked
    with pytest.raises(SegmentError):
        shared.pin()  # unlinked epochs refuse new leases
    with pytest.raises(SegmentError):
        attach_context(shared.handle)


def test_lease_context_manager(graph):
    engine = QueryEngine(graph, rng=1)
    shared = publish_context(engine.context)
    with shared.lease():
        shared.retire()
        assert not shared.unlinked
    assert shared.unlinked


def test_sketch_arrays_roundtrip(graph):
    engine = QueryEngine(graph, rng=9)
    sketch = LandmarkSketchStore.build(
        graph, num_landmarks=4, strategy="degree", rng=9
    )
    shared = publish_context(engine.context, sketch=sketch)
    try:
        assert shared.handle.has_sketch
        with attach_context(shared.handle) as attached:
            remote_sketch = attached.make_sketch()
            assert remote_sketch is not None
            for s, t in [(0, 30), (5, 99)]:
                ours = sketch.bounds(s, t)
                theirs = remote_sketch.bounds(s, t)
                assert ours.lower == theirs.lower
                assert ours.upper == theirs.upper
    finally:
        shared.retire()


def test_apply_delta_clears_shared_handle(graph):
    engine = QueryEngine(graph, rng=1)
    shared = install_shared_context(engine.context)
    assert shared is not None
    assert engine.context.shared_handle is shared.handle
    engine.apply_update(EdgeDelta(inserts=((0, 100),)))
    assert engine.context.shared_handle is None  # segments describe epoch 0
    shared.retire()


def test_registry_tracks_and_retires_epochs(graph):
    engine = QueryEngine(graph, rng=1)
    registry = SharedContextRegistry()
    first = registry.publish(engine.context)
    assert len(registry) == 1
    assert registry.get(first.epoch) is first

    engine.apply_update(EdgeDelta(inserts=((0, 100),)))
    second = registry.publish(engine.context)
    assert sorted(registry.active_epochs()) == [first.epoch, second.epoch]

    registry.retire_older_than(second.epoch)
    assert first.unlinked
    assert not second.unlinked
    assert list(registry.active_epochs()) == [second.epoch]

    summary = registry.summary()
    assert str(second.epoch) in summary["epochs"]
    registry.close()
    assert len(registry) == 0
    assert second.unlinked
