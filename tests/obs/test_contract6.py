"""Contract 6: instrumentation never changes results.

Every walk-kernel method must produce **bit-identical** estimates whether it
runs bare (``NULL_OBS``), with metrics enabled, or with metrics *and* tracing
enabled — and with tracing on, the estimates must still match the stored
golden fixtures in ``tests/data/golden.json`` hex-for-hex.  Trace ids come
from ``os.urandom``, so opening a trace can never perturb a seeded NumPy
stream; this test is the executable proof.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from regen_golden import (
    BITWISE_METHODS,
    EPSILON,
    GOLDEN_PATH,
    SEED,
    _budget,
    golden_graphs,
    golden_pairs,
)
from repro.obs import MetricsRegistry, Observability, Tracer

pytestmark = pytest.mark.conformance


def _run_method(graph, method, obs=None):
    """``regen_golden.run_method`` with an observability bundle attached."""
    from repro.core.registry import QueryContext, resolve_method

    context = QueryContext(graph, rng=SEED, budget=_budget(), obs=obs)
    spec = resolve_method(method)
    values = []
    for s, t in golden_pairs(graph):
        values.append(float(spec(context, s, t, EPSILON).value))
    return values


def _traced_obs() -> Observability:
    return Observability(
        metrics=MetricsRegistry(enabled=True), tracer=Tracer(enabled=True)
    )


@pytest.fixture(scope="module")
def graphs():
    return golden_graphs()


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(Path(GOLDEN_PATH).read_text())


@pytest.mark.parametrize("graph_name", ["ba60-unweighted", "ba60-weighted"])
@pytest.mark.parametrize("method", sorted(BITWISE_METHODS))
def test_estimates_bit_identical_with_and_without_instrumentation(
    graphs, graph_name, method
):
    graph = graphs[graph_name]
    bare = [float(v).hex() for v in _run_method(graph, method)]
    metered = [
        float(v).hex()
        for v in _run_method(graph, method, obs=Observability.serving())
    ]
    assert metered == bare, f"{method}: enabling metrics changed the estimates"

    obs = _traced_obs()
    with obs.tracer.trace("contract6"):
        traced = [float(v).hex() for v in _run_method(graph, method, obs=obs)]
    assert traced == bare, f"{method}: enabling tracing changed the estimates"


@pytest.mark.parametrize("graph_name", ["ba60-unweighted", "ba60-weighted"])
@pytest.mark.parametrize("method", sorted(BITWISE_METHODS))
def test_golden_replay_with_tracing_enabled(golden, graphs, graph_name, method):
    """The traced run matches the stored fixtures, not merely itself."""
    stored = golden["graphs"][graph_name]["methods"][method]["hex"]
    obs = _traced_obs()
    with obs.tracer.trace("golden-replay") as trace:
        replayed = [
            float(v).hex() for v in _run_method(graphs[graph_name], method, obs=obs)
        ]
    assert replayed == stored, (
        f"{method} on {graph_name} drifted from golden with tracing enabled — "
        "instrumentation leaked into the estimate stream (Contract 6)"
    )
    # and the trace actually recorded: this was not a vacuous no-op run
    assert trace is not None and trace.trace_id


def test_tracing_actually_records_spans(graphs):
    """Guard against the vacuous pass: the traced geer run must emit walk
    spans and result metrics, otherwise the bit-identity above proves nothing."""
    from repro.core.engine import QueryEngine

    graph = graphs["ba60-unweighted"]
    obs = _traced_obs()
    engine = QueryEngine(graph, rng=SEED, obs=obs)
    with obs.tracer.trace("witness") as trace:
        for s, t in golden_pairs(graph):
            engine.query(s, t, EPSILON, method="geer")
    spans = [span.name for span in trace.root.children]
    assert spans == ["engine:query"] * 3
    assert any(
        child.name == "walk:scores" for child in trace.root.children[0].children
    ), "the walk kernel recorded no spans under an active trace"
    snapshot = obs.metrics.snapshot()
    assert snapshot['repro_queries_total{method="geer"}'] == 3.0
    assert snapshot['repro_query_latency_seconds_count{method="geer"}'] == 3.0
    assert snapshot["repro_walk_steps_total"] > 0
