"""MetricsRegistry: instrument semantics, bucket math, exposition format."""

from __future__ import annotations

import math
import re
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    Sample,
)

# One exposition line: `name{labels} value` with HELP/TYPE comment lines.
# Label values may contain backslash-escaped quotes/backslashes/newlines.
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\["\\n])*"'
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    rf"(\{{{_LABEL}(,{_LABEL})*\}})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$")


def test_counter_and_gauge_basics():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("repro_test_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("repro_test_gauge")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0


def test_labelled_children_are_independent():
    registry = MetricsRegistry(enabled=True)
    family = registry.counter("repro_answers_total", labels=("tier",))
    family.labels(tier="cache").inc()
    family.labels(tier="cache").inc()
    family.labels(tier="engine").inc()
    assert family.labels(tier="cache").value == 2
    assert family.labels(tier="engine").value == 1
    with pytest.raises(ValueError):
        family.labels(wrong="x")


def test_name_and_type_conflicts_are_rejected():
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_thing_total")
    # same name + same shape returns the same family (idempotent)
    assert registry.counter("repro_thing_total") is registry.counter(
        "repro_thing_total"
    )
    with pytest.raises(ValueError):
        registry.gauge("repro_thing_total")
    with pytest.raises(ValueError):
        registry.counter("repro_thing_total", labels=("extra",))
    with pytest.raises(ValueError):
        registry.counter("0bad name")
    with pytest.raises(ValueError):
        registry.counter("repro_ok_total", labels=("0bad",))


def test_histogram_bucket_math():
    """Observations land in the first bucket with ``value <= le``; the rendered
    ``_bucket`` counts are cumulative and ``+Inf`` equals ``_count``."""
    registry = MetricsRegistry(enabled=True)
    hist = registry.histogram("repro_lat_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.01, 0.05, 0.5, 5.0):
        hist.observe(value)

    child = hist._children[()]
    # raw per-bucket counts: (<=0.01)=2 [0.005, 0.01 on the boundary],
    # (<=0.1)=1, (<=1.0)=1, +Inf overflow=1
    assert child.counts == [2, 1, 1, 1]
    assert child.cumulative_counts() == [2, 3, 4, 5]
    assert child.count == 5
    assert child.sum == pytest.approx(5.565)

    text = registry.exposition()
    assert 'repro_lat_seconds_bucket{le="0.01"} 2' in text
    assert 'repro_lat_seconds_bucket{le="0.1"} 3' in text
    assert 'repro_lat_seconds_bucket{le="1"} 4' in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_lat_seconds_count 5" in text


def test_histogram_default_buckets_cover_the_latency_spectrum():
    assert DEFAULT_LATENCY_BUCKETS == tuple(sorted(DEFAULT_LATENCY_BUCKETS))
    assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4  # cache hits
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0  # cold exact solves
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        registry.histogram("repro_bad_seconds", buckets=(1.0, 0.5))


def test_exposition_parses_line_by_line():
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_a_total", "a counter", labels=("kind",)).labels(
        kind='we"ird'
    ).inc()
    registry.gauge("repro_b", "a gauge").set(2.5)
    registry.histogram("repro_c_seconds", "a histogram").observe(0.02)
    registry.register_collector(
        lambda: [Sample("repro_d_total", "counter", "collected", {"x": "1"}, 7)]
    )

    text = registry.exposition()
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _SAMPLE_LINE.match(line), f"bad sample line: {line!r}"
    # HELP/TYPE appear exactly once per family
    assert text.count("# TYPE repro_a_total counter") == 1
    assert text.count("# TYPE repro_d_total counter") == 1
    # label escaping round-trips the embedded quote
    assert 'kind="we\\"ird"' in text


def test_snapshot_matches_exposition_universe():
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_a_total").inc(3)
    registry.histogram("repro_c_seconds").observe(0.5)
    registry.register_collector(
        lambda: [Sample("repro_d", "gauge", "", {}, 1.5)]
    )
    snap = registry.snapshot()
    assert snap["repro_a_total"] == 3.0
    assert snap["repro_c_seconds_count"] == 1.0
    assert snap["repro_c_seconds_sum"] == 0.5
    assert snap["repro_d"] == 1.5


def test_disabled_registry_is_free_and_silent():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("repro_x_total")
    assert counter is NULL_INSTRUMENT
    assert counter.labels(anything="goes") is NULL_INSTRUMENT
    counter.inc()
    counter.observe(1.0)
    counter.set(2.0)
    counter.dec()
    assert counter.value == 0.0
    registry.register_collector(lambda: [Sample("x", "counter", "", {}, 1)])
    assert registry.exposition() == ""
    assert registry.snapshot() == {}


def test_concurrent_increments_are_not_lost():
    """`+=` on a float is a read-modify-write; the per-child lock must make
    4 x 10k increments from 4 threads land exactly."""
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("repro_threads_total")
    hist = registry.histogram("repro_threads_seconds", buckets=(0.5,))

    def hammer():
        for _ in range(10_000):
            counter.inc()
            hist.observe(0.1)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 40_000
    assert hist._children[()].count == 40_000
    assert hist._children[()].cumulative_counts()[-1] == 40_000


def test_infinite_and_integer_rendering():
    registry = MetricsRegistry(enabled=True)
    gauge = registry.gauge("repro_edge")
    gauge.set(math.inf)
    assert "repro_edge +Inf" in registry.exposition()
    gauge.set(3.0)
    assert "repro_edge 3\n" in registry.exposition()
