"""Observability over HTTP: /metrics, trace_id echo, slow log, pool counters."""

from __future__ import annotations

import json
import logging

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.net.client import ResistanceClient
from repro.net.server import NetServer, NetServerConfig
from repro.net.shm import shm_available
from repro.obs import CONTENT_TYPE
from repro.service import ResistanceService, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 4, rng=5)


def _serve(graph, *, service_config=None, **net_kwargs):
    service = ResistanceService(
        graph, rng=42, config=service_config or ServiceConfig()
    )
    return NetServer(service, NetServerConfig(**net_kwargs))


def _series(text: str) -> dict[str, float]:
    """Parse an exposition body into ``{"name{labels}": value}``."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value)
    return out


def test_metrics_endpoint_serves_valid_exposition(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        client.query(3, 77, 0.2)       # engine or sketch tier
        client.query(3, 77, 0.2)       # cache tier
        client.query_batch([(0, 40), (5, 60)], 0.2)
        client.update(add=[[0, 100]])
        # the coalescer is lazy; its series appear once it exists
        server.service.coalescer.submit(17, 71, 0.2)
        server.service.flush()

        text = client.metrics()
        series = _series(text)

        # request-path series
        assert series['repro_http_requests_total{endpoint="/query",status="200"}'] == 2
        assert (
            series['repro_http_requests_total{endpoint="/query_batch",status="200"}']
            == 1
        )
        assert (
            series['repro_http_latency_seconds_count{endpoint="/query"}'] == 2
        )
        # tier counters: two of the three queried pairs repeat -> a cache hit
        assert series['repro_tier_answers_total{tier="cache"}'] >= 1
        assert sum(
            value
            for key, value in series.items()
            if key.startswith("repro_tier_answers_total")
        ) >= 4
        # per-method estimate series flow up from the engine funnel
        assert any(
            key.startswith("repro_queries_total{method=") for key in series
        )
        assert any(
            key.startswith("repro_query_latency_seconds_bucket") for key in series
        )
        # bridged Stats dataclasses: cache/sketch/coalescer/service/session
        assert "repro_cache_insertions_total" in series
        assert "repro_sketch_lookups_total" in series
        assert "repro_coalescer_submitted_total" in series
        assert series["repro_service_requests_total"] >= 4
        # epoch/update events
        assert series["repro_epoch"] == 1
        assert series["repro_updates_total"] == 1
        assert series["repro_update_latency_seconds_count"] == 1
        # histogram sanity: +Inf bucket equals the count
        assert (
            series['repro_tier_latency_seconds_bucket{tier="cache",le="+Inf"}']
            == series['repro_tier_latency_seconds_count{tier="cache"}']
        )


def test_metrics_content_type_and_http_get(graph):
    import urllib.request

    with _serve(graph) as server:
        ResistanceClient(server.url).wait_ready()
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert body.endswith("\n")
        assert "# TYPE repro_http_requests_total counter" in body


def test_trace_id_round_trip(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        # server-assigned: 16 hex chars, distinct per request
        a = client.query(3, 77, 0.2)["trace_id"]
        b = client.query(0, 40, 0.2)["trace_id"]
        assert len(a) == len(b) == 16 and a != b

        # client-supplied ids are echoed verbatim on every endpoint
        answer = client._request(
            "POST",
            "/query",
            {"s": 3, "t": 77, "epsilon": 0.2, "trace_id": "cafe0123cafe0123"},
        )
        assert answer["trace_id"] == "cafe0123cafe0123"
        batch = client._request(
            "POST",
            "/query_batch",
            {"pairs": [[0, 40]], "epsilon": 0.2, "trace_id": "beef4567beef4567"},
        )
        assert batch["trace_id"] == "beef4567beef4567"
        update = client._request(
            "POST", "/update", {"add": [[0, 100]], "trace_id": "f00dba11f00dba11"}
        )
        assert update["trace_id"] == "f00dba11f00dba11"


def test_partial_answers_counted_under_their_own_metric(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        answer = client.query(5, 60, 0.05, deadline_ms=0)
        assert answer["partial"] is True
        series = _series(client.metrics())
        assert series["repro_partial_answers_total"] == 1
        stats = client.stats()
        assert stats["server"]["partials"] == 1
        assert stats["tiers"]["partial"] == 1


def test_slow_query_log_emits_structured_json(graph, caplog):
    with _serve(graph, slow_query_ms=0.0) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        with caplog.at_level(logging.WARNING, logger="repro.net.slowlog"):
            answer = client.query(3, 77, 0.2)
        lines = [
            json.loads(record.message)
            for record in caplog.records
            if record.name == "repro.net.slowlog"
        ]
        assert lines, "no slow-query line was logged at a 0ms threshold"
        entry = lines[0]
        assert entry["event"] == "slow_query"
        assert entry["endpoint"] == "/query"
        assert entry["trace_id"] == answer["trace_id"]
        assert entry["elapsed_ms"] >= 0.0
        assert entry["threshold_ms"] == 0.0
        assert entry["s"] == 3 and entry["t"] == 77

        stats = client.stats()
        assert stats["server"]["slow_queries"] >= 1
        assert _series(client.metrics())["repro_slow_queries_total"] >= 1


def test_stats_exposes_tier_answer_counts(graph):
    with _serve(graph) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        client.query(3, 77, 0.2)
        client.query(3, 77, 0.2)  # repeat -> cache
        tiers = client.stats()["tiers"]
        assert set(tiers) == {
            "cache", "sketch", "engine", "exact", "anytime", "partial", "degraded",
        }
        assert tiers["cache"] >= 1
        assert tiers["cache"] + tiers["sketch"] + tiers["engine"] == 2


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
def test_stats_includes_pool_worker_counters(graph):
    """Worker-side SessionStats merge into the parent /stats and /metrics."""
    config = ServiceConfig(use_cache=False, use_sketch=False)
    with _serve(graph, service_config=config, workers=2) as server:
        client = ResistanceClient(server.url)
        client.wait_ready()
        batch = client.query_batch(
            [(0, 40), (3, 99), (17, 71), (5, 60)], 0.05, deadline_ms=60_000
        )
        assert all(a["source"] == "engine" for a in batch["results"])

        pool = client.stats()["pool"]
        assert pool["workers"] == 2
        assert pool["batches"] >= 1
        assert pool["shards_dispatched"] >= 1
        assert pool["workers_reporting"] >= 1
        assert pool["worker_queries"] == 4
        assert pool["worker_walk_steps"] > 0
        assert pool["worker_attaches"] >= 1
        # per-worker breakdown carries the same totals
        assert sum(w["queries"] for w in pool["per_worker"].values()) == 4

        series = _series(client.metrics())
        assert series["repro_pool_workers"] == 2
        assert series["repro_pool_worker_queries_total"] == 4
        assert series["repro_pool_worker_walk_steps_total"] > 0
        assert series["repro_pool_batches_total"] >= 1
