"""Tracer: span nesting, no-op fast paths, trace ids, ASCII rendering."""

from __future__ import annotations

import re
import threading

from repro.obs import Tracer, new_trace_id, render_span_tree
from repro.obs.trace import _NOOP_SPAN


def test_trace_ids_are_16_hex_chars_and_unique():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(re.fullmatch(r"[0-9a-f]{16}", trace_id) for trace_id in ids)


def test_span_nesting_builds_a_tree():
    tracer = Tracer(enabled=True)
    with tracer.trace("request", trace_id="abcd1234abcd1234") as trace:
        with tracer.span("tier:cache", hit=False):
            pass
        with tracer.span("engine:query", method="geer") as outer:
            with tracer.span("walk:scores", walks=8):
                pass
            with tracer.span("walk:scores", walks=16):
                pass
    assert trace.trace_id == "abcd1234abcd1234"
    assert [s.name for s in trace.root.children] == ["tier:cache", "engine:query"]
    assert [s.name for s in outer.children] == ["walk:scores", "walk:scores"]
    assert outer.attributes == {"method": "geer"}
    assert trace.root.duration > 0.0
    assert all(child.duration >= 0.0 for child in outer.children)


def test_disabled_tracer_and_orphan_spans_are_shared_noops():
    tracer = Tracer(enabled=False)
    assert tracer.span("x") is _NOOP_SPAN
    with tracer.trace("request") as trace:
        assert trace is None

    enabled = Tracer(enabled=True)
    # enabled but outside any trace: still the shared no-op, and not active
    assert not enabled.active
    assert enabled.span("x") is _NOOP_SPAN
    with enabled.trace("request"):
        assert enabled.active
        with enabled.span("child") as span:
            assert span is not None
    assert not enabled.active


def test_exceptions_still_finish_spans():
    tracer = Tracer(enabled=True)
    try:
        with tracer.trace("request") as trace:
            with tracer.span("boom"):
                raise RuntimeError("kaput")
    except RuntimeError:
        pass
    assert trace.root.children[0].duration > 0.0
    assert tracer.current_span() is None  # contextvar fully unwound


def test_threads_do_not_cross_link_spans():
    """The contextvar keeps a worker thread's spans out of the loop thread's
    trace unless the context is explicitly propagated."""
    tracer = Tracer(enabled=True)
    recorded = []

    def worker():
        # fresh thread, fresh context: no active trace here
        recorded.append(tracer.active)
        with tracer.span("orphan") as span:
            recorded.append(span)

    with tracer.trace("request") as trace:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert recorded == [False, None]
    assert trace.root.children == []


def test_to_dict_and_render_span_tree():
    tracer = Tracer(enabled=True)
    with tracer.trace("http:query", trace_id="feedfacefeedface") as trace:
        with tracer.span("tier:cache", hit=False):
            pass
        with tracer.span("engine:query", method="geer"):
            with tracer.span("walk:scores", walks=8):
                pass

    payload = trace.to_dict()
    assert payload["trace_id"] == "feedfacefeedface"
    assert payload["root"]["name"] == "http:query"
    assert payload["root"]["children"][1]["children"][0]["name"] == "walk:scores"

    text = render_span_tree(trace)
    lines = text.splitlines()
    assert lines[0].startswith("trace feedfacefeedface · http:query — ")
    assert "├─ tier:cache" in lines[1] and "(hit=False)" in lines[1]
    assert "└─ engine:query" in lines[2] and "(method=geer)" in lines[2]
    assert lines[3].startswith("   └─ walk:scores") and "(walks=8)" in lines[3]
