"""Regenerate the golden regression fixtures in ``tests/data/golden.json``.

Run from the repository root::

    PYTHONPATH=src python tests/regen_golden.py

Every registered method is executed with a pinned seed on small fixed graphs
(one unweighted, one weighted when the :class:`Graph` build supports weights)
and the resulting estimates are stored both as readable floats and as IEEE-754
hex strings.  ``tests/test_golden.py`` replays the same queries and compares
against this file, so any kernel change that silently shifts numerics fails
loudly instead of drifting.

The budgets below are chosen to be *deterministic across machines*: no
wall-clock caps (``baseline_max_seconds=None``), only explicit walk/step/scale
budgets, so a capped run truncates at exactly the same sample on every host.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "data" / "golden.json"

SEED = 20260727
EPSILON = 0.5

#: Methods whose values are pure NumPy float arithmetic on a pinned random
#: stream — the golden test compares these bit-for-bit (hex equality).
BITWISE_METHODS = (
    "amc",
    "geer",
    "hay",
    "mc",
    "mc2",
    "smm",
    "smm-peng",
    "tp",
    "tpc",
)
#: Methods backed by iterative solvers (CG/ARPACK round-off can differ across
#: SciPy builds) — compared with a tight relative tolerance instead.
SOLVER_METHODS = ("exact", "ground-truth", "rp")


def _budget(kernel_backend="auto"):
    from repro.core.registry import QueryBudget

    return QueryBudget(
        kernel_backend=kernel_backend,
        max_total_steps=2_000_000,
        mc_max_walks=200,
        mc2_max_walks=500,
        hay_max_samples=50,
        tp_budget_scale=0.02,
        tpc_budget_scale=0.01,
        baseline_max_seconds=None,  # wall-clock caps are not deterministic
        rp_jl_constant=4.0,
        rp_max_dimension=2000,
        exact_max_nodes=4000,
    )


def golden_graphs():
    """The pinned fixture graphs, keyed by name."""
    from repro.graph.generators import barabasi_albert_graph

    graphs = {"ba60-unweighted": barabasi_albert_graph(60, 3, rng=8)}
    weighted = _weighted_variant(graphs["ba60-unweighted"])
    if weighted is not None:
        graphs["ba60-weighted"] = weighted
    return graphs


def _weighted_variant(graph):
    """The same topology with pinned random weights, if weights are supported."""
    try:
        from repro.graph.builders import with_random_weights
    except ImportError:
        return None
    return with_random_weights(graph, low=0.5, high=2.5, rng=99)


def golden_pairs(graph):
    """Three pinned *edge* pairs (edges work for every method incl. mc2/hay)."""
    edges = graph.edge_array()
    return [tuple(map(int, edges[i])) for i in (0, 17, 40)]


def run_method(graph, method, kernel_backend="auto"):
    """Fresh context per method so each replays an isolated random stream.

    ``kernel_backend`` selects the walk-kernel backend for the replay; by
    Contract 9 every backend must reproduce identical bits, which is exactly
    what the backend-matrix golden test asserts.
    """
    from repro.core.registry import QueryContext, resolve_method

    context = QueryContext(graph, rng=SEED, budget=_budget(kernel_backend))
    spec = resolve_method(method)
    values = []
    for s, t in golden_pairs(graph):
        values.append(float(spec(context, s, t, EPSILON).value))
    return values


def regenerate() -> dict:
    from repro.core.registry import available_methods

    payload = {
        "seed": SEED,
        "epsilon": EPSILON,
        "graphs": {},
    }
    for graph_name, graph in golden_graphs().items():
        pairs = golden_pairs(graph)
        entry = {"pairs": pairs, "methods": {}}
        for method in available_methods():
            values = run_method(graph, method)
            entry["methods"][method] = {
                "values": values,
                "hex": [float(v).hex() for v in values],
            }
        payload["graphs"][graph_name] = entry
    return payload


def main() -> None:
    payload = regenerate()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    num_methods = len(next(iter(payload["graphs"].values()))["methods"])
    print(f"wrote {GOLDEN_PATH} ({len(payload['graphs'])} graphs x {num_methods} methods)")


if __name__ == "__main__":
    main()
