"""Regenerate the planner decision-trace fixture ``tests/data/planner_golden.json``.

Run from the repository root::

    PYTHONPATH=src python tests/regen_planner_golden.py

A :class:`QueryPlanner` is driven through a fixed synthetic workload — no
graph, no sketch build, no wall clock — and every :class:`PlanDecision` it
emits is recorded verbatim.  ``tests/service/test_planner_golden.py`` replays
the identical workload and compares against this file, so any change to the
routing logic, the cost model's EWMA arithmetic, the availability rules or
the recorded signals fails loudly instead of drifting.

Everything here is pure ``math``-module float arithmetic
(:func:`repro.core.walk_length.query_cost_units` plus EWMA folds), so the
trace is bit-identical across machines and SciPy/NumPy builds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

GOLDEN_PATH = Path(__file__).parent / "data" / "planner_golden.json"

#: Bumped whenever the workload below changes shape.
WORKLOAD_VERSION = 1


class FakeClock:
    """A manually advanced monotonic clock for deterministic timestamps."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def tick(self, seconds: float) -> None:
        self.now += float(seconds)

    def __call__(self) -> float:
        return self.now


class SimulatedSignals:
    """Synthetic stand-in for :class:`repro.service.planner.ServiceSignals`.

    Implements the same duck-typed protocol the planner consults, with every
    signal directly settable by the simulation (cache ε per pair, sketch gap
    per pair, queue depth, breaker state, epoch).
    """

    def __init__(
        self,
        *,
        num_nodes: int = 1_000,
        lambda_max_abs: float = 0.5,
        default_degree: float = 4.0,
    ) -> None:
        self.num_nodes = num_nodes
        self.lambda_max_abs = lambda_max_abs
        self.epoch = 0
        self.default_degree = float(default_degree)
        self.node_degrees: dict[int, float] = {}
        self.cached: dict[tuple[int, int], float] = {}
        self.gaps: dict[tuple[int, int], float] = {}
        self.queue = 0
        self.breaker = "closed"

    @staticmethod
    def _key(s: int, t: int) -> tuple[int, int]:
        return (min(s, t), max(s, t))

    def degrees(self, s: int, t: int) -> tuple[float, float]:
        return (
            self.node_degrees.get(s, self.default_degree),
            self.node_degrees.get(t, self.default_degree),
        )

    def cached_epsilon(self, s: int, t: int) -> Optional[float]:
        return self.cached.get(self._key(s, t))

    def sketch_gap(self, s: int, t: int) -> Optional[float]:
        return self.gaps.get(self._key(s, t))

    def queue_depth(self) -> int:
        return self.queue

    def breaker_state(self) -> str:
        return self.breaker


#: The pinned workload.  Each step either mutates a signal, feeds the cost
#: model one latency observation, advances the clock, or issues a query whose
#: decision lands in the golden trace.  It is written to walk every routing
#: branch: cold priors, engine→exact crossover after calibration, cache
#: ε-dominance (both dominating and too-loose), sketch-gap availability,
#: admission-control queue inflation, an open breaker, the anytime envelope
#: under an unmeetable deadline, and deadline-unmeetable without a sketch.
WORKLOAD: list[dict] = [
    # -- cold start: every tier at its prior, engine wins on a loose ε ------
    {"op": "query", "s": 0, "t": 1, "epsilon": 0.25},
    {"op": "tick", "seconds": 0.001},
    # -- calibration: a slow engine and a fast exact solve flip the route ---
    {"op": "observe_engine", "method": "geer", "s": 0, "t": 1,
     "epsilon": 0.25, "seconds": 0.01},
    {"op": "observe_flat", "tier": "exact", "seconds": 0.0005},
    {"op": "query", "s": 0, "t": 1, "epsilon": 0.25},
    {"op": "tick", "seconds": 0.0005},
    # -- cache ε-dominance: 0.1-entry answers ε=0.25 but not ε=0.05 ---------
    {"op": "cache", "s": 0, "t": 1, "epsilon": 0.1},
    {"op": "query", "s": 0, "t": 1, "epsilon": 0.25},
    {"op": "query", "s": 0, "t": 1, "epsilon": 0.05},
    {"op": "tick", "seconds": 0.002},
    # -- sketch gap: tight envelope beats the calibrated exact solve --------
    {"op": "gap", "s": 2, "t": 3, "gap": 0.04},
    {"op": "query", "s": 2, "t": 3, "epsilon": 0.05},
    # -- second engine observation exercises the EWMA fold (not first-set) --
    {"op": "observe_engine", "method": "geer", "s": 0, "t": 1,
     "epsilon": 0.25, "seconds": 0.002},
    # -- admission control: deep queue inflates engine; exact does not queue
    {"op": "queue", "depth": 16},
    {"op": "query", "s": 4, "t": 5, "epsilon": 0.3},
    # -- open breaker removes the engine tier entirely ----------------------
    {"op": "breaker", "state": "open"},
    {"op": "query", "s": 4, "t": 5, "epsilon": 0.3},
    {"op": "breaker", "state": "closed"},
    {"op": "queue", "depth": 0},
    {"op": "tick", "seconds": 0.01},
    # -- heavy endpoints land in a different degree bucket ------------------
    {"op": "degree", "node": 6, "value": 96.0},
    {"op": "observe_engine", "method": "geer", "s": 6, "t": 7,
     "epsilon": 0.1, "seconds": 0.0001},
    {"op": "query", "s": 6, "t": 7, "epsilon": 0.1},
    # -- anytime: nothing fits a 50µs budget, but the envelope exists -------
    {"op": "gap", "s": 6, "t": 7, "gap": 0.2},
    {"op": "query", "s": 6, "t": 7, "epsilon": 0.02, "deadline_seconds": 5e-5},
    # -- unmeetable: same budget, no envelope for the pair ------------------
    {"op": "query", "s": 8, "t": 9, "epsilon": 0.02, "deadline_seconds": 5e-5},
    # -- epoch bump is stamped into subsequent decisions --------------------
    {"op": "epoch", "value": 3},
    {"op": "query", "s": 0, "t": 1, "epsilon": 0.25},
]


def build_planner():
    """A planner over :class:`SimulatedSignals` with a pinned fake clock."""
    from repro.service.planner import PlannerConfig, QueryPlanner

    signals = SimulatedSignals()
    clock = FakeClock()
    planner = QueryPlanner(signals, config=PlannerConfig(), clock=clock)
    return planner, signals, clock


def run_workload(planner, signals, clock) -> list[dict]:
    """Apply :data:`WORKLOAD` and return the decision dicts, in order."""
    decisions = []
    for step in WORKLOAD:
        op = step["op"]
        if op == "query":
            decision = planner.decide(
                step["s"], step["t"], step["epsilon"],
                deadline_seconds=step.get("deadline_seconds"),
            )
            decisions.append(decision.to_dict())
        elif op == "observe_engine":
            planner.observe_engine(
                step["method"], step["s"], step["t"],
                step["epsilon"], step["seconds"],
            )
        elif op == "observe_flat":
            planner.observe_flat(step["tier"], step["seconds"])
        elif op == "cache":
            signals.cached[signals._key(step["s"], step["t"])] = step["epsilon"]
        elif op == "gap":
            signals.gaps[signals._key(step["s"], step["t"])] = step["gap"]
        elif op == "degree":
            signals.node_degrees[step["node"]] = step["value"]
        elif op == "queue":
            signals.queue = step["depth"]
        elif op == "breaker":
            signals.breaker = step["state"]
        elif op == "epoch":
            signals.epoch = step["value"]
        elif op == "tick":
            clock.tick(step["seconds"])
        else:  # pragma: no cover - workload authoring error
            raise ValueError(f"unknown workload op {op!r}")
    return decisions


def regenerate() -> dict:
    planner, signals, clock = build_planner()
    decisions = run_workload(planner, signals, clock)
    return {
        "workload_version": WORKLOAD_VERSION,
        "decisions": decisions,
        "cost_model": planner.cost_model.snapshot(),
        "stats": planner.stats.summary(),
    }


def main() -> None:
    payload = regenerate()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload['decisions'])} decisions)")


if __name__ == "__main__":
    main()
