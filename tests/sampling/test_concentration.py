"""Unit tests for concentration inequalities and AMC sample planners."""

import math

import numpy as np
import pytest

from repro.sampling.concentration import (
    amc_psi,
    amc_sample_budget,
    empirical_bernstein_error,
    empirical_bernstein_sample_size,
    hoeffding_error,
    hoeffding_sample_size,
    top_two_values,
)


class TestHoeffding:
    def test_error_shrinks_with_samples(self):
        assert hoeffding_error(400, 1.0, 0.05) < hoeffding_error(100, 1.0, 0.05)

    def test_error_scales_with_range(self):
        assert hoeffding_error(100, 2.0, 0.05) == pytest.approx(
            2 * hoeffding_error(100, 1.0, 0.05)
        )

    def test_sample_size_inverts_error(self):
        n = hoeffding_sample_size(1.0, 0.1, 0.05)
        assert hoeffding_error(n, 1.0, 0.05) <= 0.1
        assert hoeffding_error(max(n - 1, 1), 1.0, 0.05) >= 0.099

    def test_zero_range(self):
        assert hoeffding_sample_size(0.0, 0.1, 0.05) == 1

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            hoeffding_error(10, 1.0, 1.5)

    def test_empirical_coverage(self):
        """The bound holds empirically for bounded i.i.d. variables."""
        rng = np.random.default_rng(0)
        n, delta = 200, 0.1
        failures = 0
        trials = 300
        for _ in range(trials):
            samples = rng.random(n)  # U[0,1], mean 0.5
            radius = hoeffding_error(n, 1.0, delta)
            if abs(samples.mean() - 0.5) > radius:
                failures += 1
        assert failures / trials <= delta


class TestEmpiricalBernstein:
    def test_error_decreases_with_samples(self):
        assert empirical_bernstein_error(1000, 0.1, 1.0, 0.05) < empirical_bernstein_error(
            100, 0.1, 1.0, 0.05
        )

    def test_low_variance_tighter_than_hoeffding(self):
        # with tiny empirical variance the Bernstein radius beats Hoeffding
        n, psi, delta = 2000, 10.0, 0.05
        bern = empirical_bernstein_error(n, 0.01, psi, delta)
        hoef = hoeffding_error(n, psi, delta)
        assert bern < hoef

    def test_sample_size_inverts_error(self):
        for variance, psi in [(0.05, 1.0), (0.5, 4.0), (0.0, 2.0)]:
            n = empirical_bernstein_sample_size(variance, psi, 0.05, 0.1)
            assert empirical_bernstein_error(n, variance, psi, 0.1) <= 0.05 + 1e-12

    def test_empirical_coverage(self):
        rng = np.random.default_rng(1)
        n, delta = 300, 0.1
        failures = 0
        trials = 300
        for _ in range(trials):
            samples = rng.beta(2, 5, size=n)  # bounded in [0, 1]
            radius = empirical_bernstein_error(n, float(samples.var()), 1.0, delta)
            if abs(samples.mean() - 2 / 7) > radius:
                failures += 1
        assert failures / trials <= delta


class TestAMCBudgets:
    def test_psi_formula_one_hot(self):
        # s = e_s, t = e_t: max1 = 1, max2 = 0 -> psi = 2 ceil(l/2) (1/ds + 1/dt)
        psi = amc_psi(7, 4, 5, 1.0, 0.0, 1.0, 0.0)
        assert psi == pytest.approx(2 * 4 * (0.25 + 0.2))

    def test_psi_even_length_uses_both_maxima(self):
        psi = amc_psi(6, 2, 2, 0.5, 0.25, 0.5, 0.25)
        expected = 2 * 3 * (0.25 + 0.25) + 2 * 3 * (0.125 + 0.125)
        assert psi == pytest.approx(expected)

    def test_psi_zero_length(self):
        assert amc_psi(0, 3, 3, 1.0, 0.0, 1.0, 0.0) == 0.0

    def test_psi_decreases_with_degree(self):
        assert amc_psi(5, 50, 50, 1.0, 0.0, 1.0, 0.0) < amc_psi(5, 2, 2, 1.0, 0.0, 1.0, 0.0)

    def test_budget_formula(self):
        psi, eps, delta, tau = 1.5, 0.1, 0.01, 5
        expected = math.ceil(2 * psi**2 * math.log(2 * tau / delta) / eps**2)
        assert amc_sample_budget(psi, eps, delta, tau) == expected

    def test_budget_zero_psi(self):
        assert amc_sample_budget(0.0, 0.1, 0.01, 5) == 1

    def test_budget_decreases_with_epsilon(self):
        assert amc_sample_budget(1.0, 0.5, 0.01, 5) < amc_sample_budget(1.0, 0.05, 0.01, 5)


class TestTopTwo:
    def test_simple(self):
        assert top_two_values(np.array([0.1, 0.9, 0.5])) == (0.9, 0.5)

    def test_single_element(self):
        assert top_two_values(np.array([0.3])) == (0.3, 0.0)

    def test_empty(self):
        assert top_two_values(np.array([])) == (0.0, 0.0)

    def test_ties(self):
        assert top_two_values(np.array([0.4, 0.4, 0.1])) == (0.4, 0.4)
