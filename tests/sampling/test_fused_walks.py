"""Property tests of the fused/chunked walk-scoring kernel's exact contracts.

The two determinism contracts (DESIGN.md) are tested with **bit-for-bit**
equality, not tolerances:

1. fused ``walk_scores`` ≡ ``weights[walk_matrix].sum(axis=1)`` under the same
   seed (same draw sequence, same pairwise summation tree);
2. chunked ≡ unchunked for every chunk size, including the post-call random
   stream state (the chunked driver advances the main generator to exactly
   where unchunked execution would have left it).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.amc import amc_query
from repro.core.geer import geer_query
from repro.core.registry import QueryBudget, QueryContext
from repro.graph.builders import with_random_weights
from repro.graph.generators import barabasi_albert_graph, cycle_graph
from repro.sampling.walks import RandomWalkEngine, _pairwise_plan, walk_scores

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture(scope="module", params=["unweighted", "weighted"])
def graph(request):
    """Both pipelines: the classic uniform kernel and the weighted alias kernel.

    Every exact-equivalence contract in this module (fused == materialised,
    chunked == unchunked, chunk-size invariance of AMC/GEER) must hold for
    weight-proportional steps too.
    """
    base = barabasi_albert_graph(200, 4, rng=5)
    if request.param == "weighted":
        return with_random_weights(base, rng=31)
    return base


@pytest.fixture(scope="module")
def weights(graph):
    return np.random.default_rng(17).random(graph.num_nodes) - 0.3


class TestPairwisePlan:
    @given(st.integers(1, 5000))
    @SETTINGS
    def test_leaves_cover_length_and_merges_balance(self, length):
        leaves, merges = _pairwise_plan(length)
        assert sum(leaves) == length
        assert all(1 <= leaf <= 128 for leaf in leaves)
        # post-order merge counts must collapse the stack to exactly one entry
        depth = 0
        for merge_count in merges:
            depth += 1
            depth -= merge_count
            assert depth >= 1
        assert depth == 1

    @given(st.integers(1, 2000), st.integers(0, 2**31 - 1))
    @SETTINGS
    def test_plan_replays_numpy_reduction(self, length, seed):
        values = np.random.default_rng(seed).random((3, length)) - 0.5
        leaves, merges = _pairwise_plan(length)
        stack = []
        offset = 0
        for leaf, merge_count in zip(leaves, merges):
            partial = values[:, offset : offset + leaf].sum(axis=1)
            offset += leaf
            for _ in range(merge_count):
                right = partial
                partial = stack.pop()
                partial = partial + right
            stack.append(partial)
        assert np.array_equal(stack[0], values.sum(axis=1))


class TestFusedEqualsMaterialised:
    @given(
        num_walks=st.integers(0, 300),
        length=st.integers(0, 200),
        seed=st.integers(0, 2**31 - 1),
    )
    @SETTINGS
    def test_bit_identical_scores_and_step_counts(self, graph, weights, num_walks, length, seed):
        materialised = RandomWalkEngine(graph, rng=seed)
        fused = RandomWalkEngine(graph, rng=seed)
        expected = weights[materialised.walk_matrix(7, num_walks, length)].sum(axis=1)
        actual = fused.walk_scores(7, num_walks, length, weights)
        assert np.array_equal(expected, actual)
        assert materialised.total_steps == fused.total_steps
        # both engines must leave the shared stream in the same state
        assert np.array_equal(materialised.rng.random(3), fused.rng.random(3))

    def test_long_walks_cross_pairwise_leaf_boundaries(self, graph, weights):
        # lengths around the 128-element pairwise leaf and above (recursive split)
        for length in (127, 128, 129, 256, 400, 517):
            reference = RandomWalkEngine(graph, rng=11)
            fused = RandomWalkEngine(graph, rng=11)
            expected = weights[reference.walk_matrix(0, 40, length)].sum(axis=1)
            assert np.array_equal(expected, fused.walk_scores(0, 40, length, weights))

    def test_uniform_degree_fast_path(self):
        ring = cycle_graph(50)
        ring_weights = np.random.default_rng(3).random(50)
        reference = RandomWalkEngine(ring, rng=9)
        fused = RandomWalkEngine(ring, rng=9)
        assert reference._uniform_degree == 2
        expected = ring_weights[reference.walk_matrix(4, 60, 30)].sum(axis=1)
        assert np.array_equal(expected, fused.walk_scores(4, 60, 30, ring_weights))

    def test_zero_walks_and_zero_length_draw_nothing(self, graph, weights):
        engine = RandomWalkEngine(graph, rng=1)
        before = engine.rng.bit_generator.state["state"]["state"]
        assert np.array_equal(engine.walk_scores(0, 0, 10, weights), np.zeros(0))
        assert np.array_equal(engine.walk_scores(0, 5, 0, weights), np.zeros(5))
        assert engine.walk_endpoints(0, 0, 10).shape == (0,)
        assert engine.walk_matrix(0, 0, 10).shape == (0, 10)
        assert engine.rng.bit_generator.state["state"]["state"] == before
        assert engine.total_steps == 0

    def test_weights_shape_validated(self, graph):
        engine = RandomWalkEngine(graph, rng=1)
        with pytest.raises(ValueError, match="length-n"):
            engine.walk_scores(0, 4, 3, np.ones(graph.num_nodes + 1))

    def test_functional_shortcut_matches_engine(self, graph, weights):
        from_engine = RandomWalkEngine(graph, rng=21).walk_scores(2, 25, 12, weights)
        from_function = walk_scores(graph, 2, 25, 12, weights, rng=21)
        assert np.array_equal(from_engine, from_function)


class TestChunkedEqualsUnchunked:
    @given(
        num_walks=st.integers(1, 200),
        length=st.integers(1, 150),
        chunk_size=st.integers(1, 250),
        seed=st.integers(0, 2**31 - 1),
    )
    @SETTINGS
    def test_bit_identical_for_every_chunk_size(
        self, graph, weights, num_walks, length, chunk_size, seed
    ):
        unchunked = RandomWalkEngine(graph, rng=seed)
        chunked = RandomWalkEngine(graph, rng=seed)
        expected = unchunked.walk_scores(3, num_walks, length, weights)
        actual = chunked.walk_scores(3, num_walks, length, weights, chunk_size=chunk_size)
        assert np.array_equal(expected, actual)
        assert unchunked.total_steps == chunked.total_steps
        # the chunked driver must leave the main stream exactly where the
        # unchunked kernel would have (subsequent draws stay aligned)
        assert np.array_equal(unchunked.rng.random(4), chunked.rng.random(4))

    def test_fallback_without_advance_support(self, graph, weights):
        # MT19937 has no advance(): chunking falls back to a single chunk
        # rather than silently changing which draws feed which walk.
        legacy = np.random.Generator(np.random.MT19937(5))
        reference = np.random.Generator(np.random.MT19937(5))
        chunked = RandomWalkEngine(graph, rng=legacy).walk_scores(
            0, 50, 20, weights, chunk_size=7
        )
        unchunked = RandomWalkEngine(graph, rng=reference).walk_scores(
            0, 50, 20, weights
        )
        assert np.array_equal(chunked, unchunked)


class TestEstimatorsInvariantUnderChunking:
    """AMC and GEER estimates must not depend on the memory-bounding knob."""

    @pytest.mark.parametrize("chunk", [None, 3, 17, 1000])
    def test_amc_estimate_invariant(self, graph, chunk):
        context = QueryContext(graph, rng=0)
        lam = context.lambda_max_abs
        baseline = amc_query(
            graph, 0, 9, epsilon=0.5, lambda_max_abs=lam, rng=1234
        )
        chunked = amc_query(
            graph, 0, 9, epsilon=0.5, lambda_max_abs=lam, rng=1234,
            walk_chunk_size=chunk,
        )
        assert chunked.value == baseline.value

    @pytest.mark.parametrize("chunk", [None, 5, 64])
    def test_geer_query_invariant(self, graph, chunk):
        context = QueryContext(graph, rng=0)
        lam = context.lambda_max_abs
        baseline = geer_query(graph, 0, 9, epsilon=0.4, lambda_max_abs=lam, rng=77)
        chunked = geer_query(
            graph, 0, 9, epsilon=0.4, lambda_max_abs=lam, rng=77,
            walk_chunk_size=chunk,
        )
        assert chunked.value == baseline.value

    def test_budget_chunk_size_threads_through_registry(self, graph):
        tight = QueryContext(graph, rng=6, budget=QueryBudget(walk_chunk_size=4))
        loose = QueryContext(graph, rng=6, budget=QueryBudget(walk_chunk_size=None))
        from repro.core.registry import resolve_method

        spec = resolve_method("amc")
        assert (
            spec(tight, 0, 9, 0.5).value == spec(loose, 0, 9, 0.5).value
        )


class TestWeightedStepDistribution:
    """The alias kernel must realise exactly the weighted transition law."""

    def test_alias_tables_partition_probability_mass(self):
        from repro.sampling.walks import _build_alias_tables

        graph = with_random_weights(barabasi_albert_graph(80, 3, rng=2), rng=4)
        prob, alias_node = _build_alias_tables(graph)
        indptr, indices, weights = graph.indptr, graph.indices, graph.weights
        for v in range(graph.num_nodes):
            lo, hi = int(indptr[v]), int(indptr[v + 1])
            degree = hi - lo
            # accumulate each neighbour's total mass across the slots
            mass = {int(u): 0.0 for u in indices[lo:hi]}
            for k in range(lo, hi):
                mass[int(indices[k])] += prob[k] / degree
                mass[int(alias_node[k])] += (1.0 - prob[k]) / degree
            row_total = weights[lo:hi].sum()
            for k in range(lo, hi):
                expected = weights[k] / row_total
                assert mass[int(indices[k])] == pytest.approx(expected, abs=1e-12)

    def test_step_frequencies_match_transition_matrix(self, weighted_triangle):
        engine = RandomWalkEngine(weighted_triangle, rng=8)
        starts = np.zeros(120_000, dtype=np.int64)
        ends = engine.step(starts)
        freq = np.bincount(ends, minlength=3) / len(ends)
        row = weighted_triangle.transition_matrix()[0].toarray().ravel()
        assert np.allclose(freq, row, atol=0.01)

    def test_python_reference_agrees_statistically(self, weighted_triangle):
        engine = RandomWalkEngine(weighted_triangle, rng=12)
        ends = np.array(
            [engine.walk_single_python(0, 1)[-1] for _ in range(40_000)]
        )
        freq = np.bincount(ends, minlength=3) / len(ends)
        row = weighted_triangle.transition_matrix()[0].toarray().ravel()
        assert np.allclose(freq, row, atol=0.02)

    @given(st.integers(0, 2**31 - 1))
    @SETTINGS
    def test_hitting_walks_and_endpoints_share_weighted_kernel(self, seed):
        graph = with_random_weights(barabasi_albert_graph(40, 3, rng=6), rng=7)
        one = RandomWalkEngine(graph, rng=seed)
        two = RandomWalkEngine(graph, rng=seed)
        assert np.array_equal(
            one.walk_endpoints(0, 50, 9), two.walk_matrix(0, 50, 9)[:, -1]
        )
