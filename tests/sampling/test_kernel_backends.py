"""Walk-kernel backend selection, fallback, and bit-identity (Contract 9).

Two families of tests:

* **Resolution / fallback** — ``kernel_backend`` is a speed knob with a
  guaranteed answer: unknown names fail fast, a missing numba falls back
  to numpy (silently under ``"auto"``, with exactly one
  :class:`RuntimeWarning` when requested explicitly), and a numba that
  imports but fails to compile warns once even under ``"auto"``.  The
  missing/broken numba is simulated by monkeypatching, so these run
  identically on hosts with and without numba installed.

* **Bit-identity of the numba algorithm** — the njit kernels are plain
  Python functions compiled at load time; run uncompiled (the "python
  twin" backend) they execute the same IEEE-754 float64 scalar
  arithmetic CPython-side.  Hex-equality of the twin against the numpy
  backend therefore proves Contract 9's algorithm on numba-free hosts:
  step draws, Vose alias acceptance, the replicated 128-column pairwise
  summation tree (including numpy's ``-0.0 → +0.0`` identity add), and
  the chunked stream bookkeeping.  CI's with-numba leg re-proves the
  compiled artifacts against the same fixtures.
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.sampling.kernels as kernels
from repro.graph.generators import barabasi_albert_graph, cycle_graph
from repro.sampling.kernels import numba_backend
from repro.sampling.kernels.numba_backend import python_twin_backend
from repro.sampling.kernels.numpy_backend import NUMPY_BACKEND
from repro.sampling.walks import RandomWalkEngine
from strategies import walkable_graphs

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture
def clean_resolution(monkeypatch):
    """Pristine backend-resolution state, restored afterwards.

    Clears the cached numba probe and the warn-once set, and removes the
    environment override so resolution behaves the same on every host
    (including CI's with-numba leg, which exports REPRO_KERNEL_BACKEND).
    """
    monkeypatch.delenv(kernels.KERNEL_BACKEND_ENV, raising=False)
    kernels._reset_for_tests()
    yield monkeypatch
    kernels._reset_for_tests()


def _stub_numba_missing(monkeypatch):
    """Make ``import numba`` raise ImportError, regardless of the host."""
    monkeypatch.setitem(sys.modules, "numba", None)


# --------------------------------------------------------------------------- #
# resolution + fallback
# --------------------------------------------------------------------------- #
class TestResolution:
    def test_numpy_always_resolves(self, clean_resolution):
        assert kernels.resolve_backend("numpy") is NUMPY_BACKEND
        assert kernels.active_backend_name("numpy") == "numpy"

    def test_unknown_backend_rejected(self, clean_resolution):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("cython")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            RandomWalkEngine(cycle_graph(5), kernel_backend="gpu")

    def test_auto_without_numba_falls_back_silently(self, clean_resolution):
        _stub_numba_missing(clean_resolution)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            backend = kernels.resolve_backend("auto")
        assert backend is NUMPY_BACKEND

    def test_explicit_numba_missing_warns_exactly_once(self, clean_resolution):
        _stub_numba_missing(clean_resolution)
        with pytest.warns(RuntimeWarning, match="falling back") as caught:
            engine = RandomWalkEngine(cycle_graph(6), kernel_backend="numba")
        assert engine.kernel_backend == "numpy"
        assert len(caught) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second request: no new warning
            again = RandomWalkEngine(cycle_graph(6), kernel_backend="numba")
        assert again.kernel_backend == "numpy"

    def test_compile_failure_warns_once_even_under_auto(self, clean_resolution):
        def broken_load():
            raise RuntimeError("LLVM exploded")

        clean_resolution.setattr(numba_backend, "load", broken_load)
        with pytest.warns(RuntimeWarning, match="compilation failed") as caught:
            backend = kernels.resolve_backend("auto")
        assert backend is NUMPY_BACKEND
        assert len(caught) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels.resolve_backend("auto") is NUMPY_BACKEND
        status = kernels.backend_status()
        assert status["numba"]["available"] is False
        assert "LLVM exploded" in status["numba"]["error"]

    def test_env_var_steers_auto_resolution(self, clean_resolution):
        clean_resolution.setenv(kernels.KERNEL_BACKEND_ENV, "numpy")
        assert kernels.resolve_backend("auto") is NUMPY_BACKEND
        # an explicit budget value is never overridden by the environment
        clean_resolution.setenv(kernels.KERNEL_BACKEND_ENV, "numba")
        assert kernels.resolve_backend("numpy") is NUMPY_BACKEND
        # junk in the environment is ignored, not an error
        clean_resolution.setenv(kernels.KERNEL_BACKEND_ENV, "fortran")
        assert kernels.resolve_backend("auto").name in ("numpy", "numba")

    def test_backend_status_shape(self, clean_resolution):
        _stub_numba_missing(clean_resolution)
        status = kernels.backend_status()
        assert status["numpy"] == {"available": True, "error": None}
        assert status["numba"]["available"] is False
        assert "not installed" in status["numba"]["error"]

    def test_engine_exposes_resolved_backend(self):
        engine = RandomWalkEngine(cycle_graph(5), kernel_backend="numpy")
        assert engine.kernel_backend == "numpy"
        auto = RandomWalkEngine(cycle_graph(5))
        assert auto.kernel_backend in ("numpy", "numba")


# --------------------------------------------------------------------------- #
# bit-identity of the numba algorithm (python twin ≡ numpy backend)
# --------------------------------------------------------------------------- #
def _twin_engine(graph, rng):
    engine = RandomWalkEngine(graph, rng=rng, kernel_backend="numpy")
    engine._kernels = python_twin_backend()
    return engine


class TestTwinBitIdentity:
    @given(
        graph=walkable_graphs(max_nodes=24, weighted=None),
        seed=st.integers(0, 2**31 - 1),
        num_walks=st.integers(1, 24),
        length=st.integers(1, 280),
        chunk=st.one_of(st.none(), st.integers(1, 16)),
    )
    @SETTINGS
    def test_walk_scores_hex_identical(self, graph, seed, num_walks, length, chunk):
        weights = np.random.default_rng(seed ^ 0xA5A5).normal(size=graph.num_nodes)
        reference = RandomWalkEngine(graph, rng=seed, kernel_backend="numpy")
        twin = _twin_engine(graph, seed)
        expected = reference.walk_scores(0, num_walks, length, weights, chunk_size=chunk)
        actual = twin.walk_scores(0, num_walks, length, weights, chunk_size=chunk)
        assert actual.tobytes() == expected.tobytes()
        # the random stream must land in the same place too (Contract 2)
        assert (
            twin.rng.bit_generator.state == reference.rng.bit_generator.state
        )

    @given(
        graph=walkable_graphs(max_nodes=24, weighted=True),
        seed=st.integers(0, 2**31 - 1),
        num_walks=st.integers(1, 40),
        steps=st.integers(1, 12),
    )
    @SETTINGS
    def test_weighted_alias_draw_equivalence(self, graph, seed, num_walks, steps):
        """The compiled alias draw samples the exact same neighbours."""
        reference = RandomWalkEngine(graph, rng=seed, kernel_backend="numpy")
        twin = _twin_engine(graph, seed)
        nodes_ref = np.zeros(num_walks, dtype=np.int64)
        nodes_twin = np.zeros(num_walks, dtype=np.int64)
        for _ in range(steps):
            nodes_ref = reference.step(nodes_ref)
            nodes_twin = twin.step(nodes_twin)
            assert np.array_equal(nodes_ref, nodes_twin)

    def test_negative_zero_scores_match_numpy_identity_add(self):
        """All-(-0.0) weights: numpy's sum yields +0.0 and so must the twin."""
        graph = cycle_graph(8)
        weights = np.full(graph.num_nodes, -0.0)
        for length in (1, 7, 8, 100, 128, 300):
            reference = RandomWalkEngine(graph, rng=3, kernel_backend="numpy")
            twin = _twin_engine(graph, 3)
            expected = reference.walk_scores(0, 5, length, weights)
            actual = twin.walk_scores(0, 5, length, weights)
            assert actual.tobytes() == expected.tobytes()
            assert all(v.hex() == "0x0.0p+0" for v in actual)

    def test_endpoints_and_matrix_identical(self):
        graph = barabasi_albert_graph(150, 3, rng=11)
        reference = RandomWalkEngine(graph, rng=99, kernel_backend="numpy")
        twin = _twin_engine(graph, 99)
        assert np.array_equal(
            reference.walk_matrix(2, 20, 30), twin.walk_matrix(2, 20, 30)
        )
        assert np.array_equal(
            reference.walk_endpoints(2, 20, 30), twin.walk_endpoints(2, 20, 30)
        )


@pytest.mark.conformance
def test_twin_backend_reproduces_golden_fixtures(monkeypatch):
    """Replay every bitwise golden method through the numba algorithm.

    Forces engine construction to hand out the python twin, then requires
    hex-exact agreement with ``tests/data/golden.json`` — the same gate the
    compiled backend must pass on CI's with-numba leg.
    """
    import json

    import repro.sampling.walks as walks
    from regen_golden import BITWISE_METHODS, GOLDEN_PATH, golden_graphs, run_method

    twin = python_twin_backend()
    monkeypatch.setattr(walks, "resolve_backend", lambda name="auto": twin)
    golden = json.loads(GOLDEN_PATH.read_text())
    for graph_name, graph in golden_graphs().items():
        for method in BITWISE_METHODS:
            stored = golden["graphs"][graph_name]["methods"][method]["hex"]
            replayed = [float(v).hex() for v in run_method(graph, method)]
            assert replayed == stored, (
                f"python twin of the numba kernels drifted from golden values "
                f"for {method} on {graph_name}"
            )
