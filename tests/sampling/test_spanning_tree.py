"""Unit tests for spanning-tree samplers."""

import numpy as np
import pytest

from repro.exceptions import GraphStructureError
from repro.graph.builders import from_edges
from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graph.properties import is_connected
from repro.sampling.spanning_tree import (
    aldous_broder_spanning_tree,
    spanning_tree_edge_indicator,
    wilson_spanning_tree,
)


def _is_spanning_tree(graph, tree_edges) -> bool:
    if len(tree_edges) != graph.num_nodes - 1:
        return False
    tree_graph = from_edges(tree_edges, num_nodes=graph.num_nodes)
    if not is_connected(tree_graph):
        return False
    return all(graph.has_edge(int(u), int(v)) for u, v in tree_edges)


class TestWilson:
    def test_produces_spanning_tree(self, ba_small):
        tree = wilson_spanning_tree(ba_small, rng=1)
        assert _is_spanning_tree(ba_small, tree)

    def test_path_graph_tree_is_the_path(self):
        graph = path_graph(6)
        tree = wilson_spanning_tree(graph, rng=2)
        assert len(tree) == 5
        assert _is_spanning_tree(graph, tree)

    def test_root_argument(self, complete8):
        tree = wilson_spanning_tree(complete8, root=3, rng=3)
        assert _is_spanning_tree(complete8, tree)

    def test_disconnected_rejected(self):
        graph = from_edges([(0, 1), (2, 3)])
        with pytest.raises(GraphStructureError):
            wilson_spanning_tree(graph)

    def test_cycle_edge_frequency_uniform(self):
        # On a cycle of length n, each spanning tree omits exactly one edge, so each
        # edge appears in a uniform spanning tree with probability (n-1)/n.
        graph = cycle_graph(6)
        target = (0, 1)
        hits = 0
        trials = 600
        for seed in range(trials):
            tree = wilson_spanning_tree(graph, rng=seed)
            hits += int(spanning_tree_edge_indicator(tree, np.array([target]))[0])
        assert hits / trials == pytest.approx(5 / 6, abs=0.05)


class TestAldousBroder:
    def test_produces_spanning_tree(self, complete8):
        tree = aldous_broder_spanning_tree(complete8, rng=4)
        assert _is_spanning_tree(complete8, tree)

    def test_matches_wilson_edge_probability(self):
        # complete graph K5: every edge is in a UST with probability r(e) = 2/5
        graph = complete_graph(5)
        trials = 500
        hits_wilson = hits_ab = 0
        for seed in range(trials):
            tw = wilson_spanning_tree(graph, rng=seed)
            ta = aldous_broder_spanning_tree(graph, rng=seed + 10_000)
            hits_wilson += int(spanning_tree_edge_indicator(tw, np.array([(0, 1)]))[0])
            hits_ab += int(spanning_tree_edge_indicator(ta, np.array([(0, 1)]))[0])
        assert hits_wilson / trials == pytest.approx(0.4, abs=0.07)
        assert hits_ab / trials == pytest.approx(0.4, abs=0.07)


class TestIndicator:
    def test_indicator(self):
        tree = np.array([(0, 1), (1, 2)])
        queries = np.array([(1, 0), (2, 1), (0, 2)])
        result = spanning_tree_edge_indicator(tree, queries)
        np.testing.assert_array_equal(result, [True, True, False])
