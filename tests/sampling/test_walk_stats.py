"""Unit tests for walk statistics helpers."""

import numpy as np
import pytest

from repro.graph.generators import complete_graph
from repro.sampling.walk_stats import (
    empirical_transition_power,
    endpoint_histogram,
    score_walks,
    visit_counts,
)


class TestEndpointHistogram:
    def test_simple(self):
        hist = endpoint_histogram(np.array([0, 0, 1, 2]), 4)
        np.testing.assert_allclose(hist, [0.5, 0.25, 0.25, 0.0])

    def test_empty(self):
        np.testing.assert_allclose(endpoint_histogram(np.array([]), 3), 0.0)

    def test_sums_to_one(self):
        hist = endpoint_histogram(np.array([2, 2, 2, 1]), 5)
        assert hist.sum() == pytest.approx(1.0)


class TestVisitCounts:
    def test_counts(self):
        walks = np.array([[0, 1], [1, 1]])
        counts = visit_counts(walks, 3)
        np.testing.assert_array_equal(counts, [1, 3, 0])

    def test_empty(self):
        counts = visit_counts(np.empty((0, 0), dtype=np.int64), 2)
        np.testing.assert_array_equal(counts, [0, 0])


class TestScoreWalks:
    def test_per_walk_sums(self):
        walks = np.array([[0, 1, 0], [2, 2, 2]])
        weights = np.array([1.0, 10.0, 100.0])
        np.testing.assert_allclose(score_walks(walks, weights), [12.0, 300.0])

    def test_zero_length_walks(self):
        scores = score_walks(np.empty((3, 0), dtype=np.int64), np.array([1.0]))
        np.testing.assert_allclose(scores, 0.0)

    def test_matches_manual_loop(self, ba_small, rng):
        from repro.sampling.walks import simulate_walks

        walks = simulate_walks(ba_small, 0, 50, 6, rng=1)
        weights = rng.random(ba_small.num_nodes)
        fast = score_walks(walks, weights)
        slow = np.array([sum(weights[node] for node in row) for row in walks])
        np.testing.assert_allclose(fast, slow)


class TestEmpiricalTransitionPower:
    def test_close_to_matrix_power(self):
        graph = complete_graph(5)
        empirical = empirical_transition_power(graph, 0, 2, 30000, rng=2)
        transition = graph.transition_matrix().toarray()
        expected = np.linalg.matrix_power(transition, 2)[0]
        assert np.abs(empirical - expected).max() < 0.02
