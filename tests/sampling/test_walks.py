"""Unit tests for the vectorised random-walk engine."""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.graph.generators import complete_graph, cycle_graph, star_graph
from repro.sampling.walks import RandomWalkEngine, simulate_walks, walk_endpoints


class TestWalkMatrix:
    def test_shape(self, complete8):
        engine = RandomWalkEngine(complete8, rng=0)
        walks = engine.walk_matrix(0, 25, 7)
        assert walks.shape == (25, 7)

    def test_all_visited_nodes_are_neighbors_of_previous(self, ba_small):
        engine = RandomWalkEngine(ba_small, rng=1)
        walks = engine.walk_matrix(3, 10, 12)
        for row in walks:
            previous = 3
            for node in row:
                assert ba_small.has_edge(previous, int(node))
                previous = int(node)

    def test_zero_walks_or_zero_length(self, complete8):
        engine = RandomWalkEngine(complete8, rng=0)
        assert engine.walk_matrix(0, 0, 5).shape == (0, 5)
        assert engine.walk_matrix(0, 5, 0).shape == (5, 0)

    def test_total_steps_counter(self, complete8):
        engine = RandomWalkEngine(complete8, rng=0)
        engine.walk_matrix(0, 10, 5)
        assert engine.total_steps == 50

    def test_invalid_start(self, complete8):
        engine = RandomWalkEngine(complete8, rng=0)
        with pytest.raises(ValueError):
            engine.walk_matrix(99, 1, 1)

    def test_isolated_node_graph_rejected(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(ValueError):
            RandomWalkEngine(graph)

    def test_star_alternates(self):
        # from the centre of a star, odd steps land on leaves, even steps on centre
        graph = star_graph(5)
        engine = RandomWalkEngine(graph, rng=2)
        walks = engine.walk_matrix(0, 20, 4)
        assert np.all(walks[:, 0] > 0)
        assert np.all(walks[:, 1] == 0)
        assert np.all(walks[:, 2] > 0)
        assert np.all(walks[:, 3] == 0)


class TestDistributionCorrectness:
    def test_one_step_distribution_matches_transition(self, ba_small):
        """The empirical endpoint distribution after 1 step equals row s of P."""
        start = 7
        ends = walk_endpoints(ba_small, start, 20000, 1, rng=3)
        empirical = np.bincount(ends, minlength=ba_small.num_nodes) / 20000
        expected = np.zeros(ba_small.num_nodes)
        expected[ba_small.neighbors(start)] = 1.0 / ba_small.degree(start)
        assert np.abs(empirical - expected).max() < 0.02

    def test_multi_step_distribution_matches_matrix_power(self):
        graph = complete_graph(6)
        length = 3
        ends = walk_endpoints(graph, 0, 30000, length, rng=4)
        empirical = np.bincount(ends, minlength=6) / 30000
        transition = graph.transition_matrix().toarray()
        expected = np.linalg.matrix_power(transition, length)[0]
        assert np.abs(empirical - expected).max() < 0.02

    def test_vectorised_matches_python_reference_distribution(self):
        graph = cycle_graph(5)
        fast = RandomWalkEngine(graph, rng=5)
        slow = RandomWalkEngine(graph, rng=6)
        fast_ends = fast.walk_matrix(0, 4000, 4)[:, -1]
        slow_ends = np.array([slow.walk_single_python(0, 4)[-1] for _ in range(4000)])
        fast_hist = np.bincount(fast_ends, minlength=5) / 4000
        slow_hist = np.bincount(slow_ends, minlength=5) / 4000
        assert np.abs(fast_hist - slow_hist).max() < 0.05


class TestHittingWalks:
    def test_path_hits_neighbor_quickly(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2)])
        engine = RandomWalkEngine(graph, rng=7)
        steps, previous = engine.hitting_walks(0, 1, 200, max_steps=1000)
        assert np.all(steps > 0)
        assert set(np.unique(previous)) <= {0, 2}

    def test_unreachable_within_budget(self):
        graph = cycle_graph(30)
        engine = RandomWalkEngine(graph, rng=8)
        steps, previous = engine.hitting_walks(0, 15, 50, max_steps=3)
        assert np.all(steps == -1)
        assert np.all(previous == -1)

    def test_mean_hitting_time_star(self):
        # centre -> leaf hitting time on a star with k leaves is 2k - 1
        k = 6
        graph = star_graph(k)
        engine = RandomWalkEngine(graph, rng=9)
        steps, _ = engine.hitting_walks(0, 1, 4000, max_steps=10000)
        assert np.all(steps > 0)
        assert steps.mean() == pytest.approx(2 * k - 1, rel=0.1)

    def test_zero_walks(self, complete8):
        engine = RandomWalkEngine(complete8, rng=0)
        steps, previous = engine.hitting_walks(0, 1, 0, max_steps=10)
        assert len(steps) == 0 and len(previous) == 0


class TestFunctionalHelpers:
    def test_simulate_walks(self, complete8):
        walks = simulate_walks(complete8, 0, 5, 6, rng=0)
        assert walks.shape == (5, 6)

    def test_walk_endpoints_length(self, complete8):
        ends = walk_endpoints(complete8, 0, 9, 4, rng=0)
        assert ends.shape == (9,)
