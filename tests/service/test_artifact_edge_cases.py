"""Artifact round-trips on edge-case graphs and stale-lineage handling.

Three corners the happy-path suite does not reach: weighted graphs with
isolated nodes, the single-edge graph, and in-place deltas that leave the
on-disk artifacts behind (which must refuse to load without a matching
lineage / delta log).
"""

import numpy as np
import pytest

from repro.core.registry import QueryContext
from repro.graph import (
    EdgeDelta,
    Graph,
    GraphStore,
    barabasi_albert_graph,
    from_edges,
    graph_fingerprint,
)
from repro.linalg.eigen import SpectralInfo
from repro.service.artifacts import (
    DELTA_LOG_NAME,
    ArtifactError,
    StaleArtifactError,
    load_bundle,
    load_context,
    load_delta_log,
    load_manifest,
    save_artifacts,
)

FAKE_SPECTRAL = SpectralInfo(lambda_2=0.5, lambda_n=-0.25)


def _context(graph):
    """An unvalidated context with injected spectral info (no solve needed)."""
    return QueryContext(graph, spectral_info=FAKE_SPECTRAL, validate=False)


class TestEdgeCaseGraphs:
    def test_weighted_graph_with_isolated_nodes_round_trips(self, tmp_path):
        # nodes 3 and 4 are isolated: representable as a Graph, not walkable
        graph = from_edges(
            [(0, 1, 2.0), (1, 2, 0.5)], num_nodes=5
        )
        assert graph.is_weighted and np.any(graph.degrees == 0)
        save_artifacts(_context(graph), tmp_path)
        restored = load_context(graph, tmp_path, validate=False)
        assert restored.spectral_info == FAKE_SPECTRAL
        assert restored.graph is graph
        assert restored.epoch == 0

    def test_isolated_node_membership_changes_fingerprint(self, tmp_path):
        with_isolated = from_edges([(0, 1, 2.0)], num_nodes=3)
        without = from_edges([(0, 1, 2.0)], num_nodes=2)
        save_artifacts(_context(with_isolated), tmp_path)
        with pytest.raises(StaleArtifactError):
            load_context(without, tmp_path, validate=False)

    def test_single_edge_graph_round_trips(self, tmp_path):
        graph = from_edges([(0, 1, 3.5)])
        assert graph.num_edges == 1
        save_artifacts(_context(graph), tmp_path)
        restored = load_context(graph, tmp_path, validate=False)
        assert restored.spectral_info == FAKE_SPECTRAL
        manifest = load_manifest(tmp_path)
        assert manifest["num_edges"] == 1
        assert manifest["fingerprint"] == graph_fingerprint(graph)

    def test_single_edge_weight_change_is_stale(self, tmp_path):
        graph = from_edges([(0, 1, 3.5)])
        save_artifacts(_context(graph), tmp_path)
        reweighted = from_edges([(0, 1, 3.0)])
        with pytest.raises(StaleArtifactError):
            load_context(reweighted, tmp_path, validate=False)


class TestStaleLineage:
    @pytest.fixture()
    def graph(self):
        return barabasi_albert_graph(60, 3, rng=8)

    @pytest.fixture()
    def delta(self, graph):
        return EdgeDelta(removals=[tuple(map(int, graph.edge_array()[4]))])

    def test_in_place_delta_without_log_refuses_to_load(self, tmp_path, graph, delta):
        save_artifacts(QueryContext(graph), tmp_path)
        moved_on = delta.apply_to(graph)
        with pytest.raises(StaleArtifactError):
            load_bundle(moved_on, tmp_path)

    def test_unrelated_graph_refuses_even_with_log(self, tmp_path, graph, delta):
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        unrelated = barabasi_albert_graph(60, 3, rng=99)
        with pytest.raises(StaleArtifactError):
            load_bundle(unrelated, tmp_path)

    def test_base_graph_with_log_replays_to_saved_epoch(self, tmp_path, graph, delta):
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        assert load_delta_log(tmp_path) == [delta]
        restored, _sketch = load_bundle(graph, tmp_path)
        assert restored.epoch == 1
        assert restored.lineage == store.lineage
        assert restored.graph == delta.apply_to(graph)
        # replay disabled: the base graph no longer matches
        with pytest.raises(StaleArtifactError):
            load_bundle(graph, tmp_path, replay_deltas=False)

    def test_tampered_log_refuses_to_load(self, tmp_path, graph, delta):
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        # replace the log with a different (valid-json) delta
        other = EdgeDelta(removals=[tuple(map(int, graph.edge_array()[9]))])
        (tmp_path / DELTA_LOG_NAME).write_text(other.to_json() + "\n")
        with pytest.raises(StaleArtifactError, match="did not reach"):
            load_bundle(graph, tmp_path)

    def test_corrupt_log_is_an_artifact_error(self, tmp_path, graph, delta):
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        (tmp_path / DELTA_LOG_NAME).write_text("{not json\n")
        with pytest.raises(ArtifactError, match="corrupt delta log"):
            load_bundle(graph, tmp_path)

    def test_manifest_records_epoch_and_lineage(self, tmp_path, graph, delta):
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        manifest = load_manifest(tmp_path)
        assert manifest["epoch"] == 1
        assert manifest["lineage"] == store.lineage
        assert manifest["base_fingerprint"] == graph_fingerprint(graph)
        assert manifest["num_deltas"] == 1

    @pytest.mark.parametrize(
        "bad_line",
        [
            pytest.param('{"inserts":[[3,3]]}', id="self-loop"),
            pytest.param('{"removals":[[0,59]]}', id="missing-edge"),
            pytest.param('{"inserts":[[0,5999]]}', id="out-of-range-node"),
            pytest.param('{"inserts":[[0,1,-2.0]]}', id="negative-weight"),
        ],
    )
    def test_invalid_log_contents_surface_as_artifact_errors(
        self, tmp_path, graph, delta, bad_line
    ):
        """Bad log payloads must refuse as ArtifactError, never leak raw
        GraphStructureError/ValueError past the artifact boundary."""
        store = GraphStore(graph)
        context = QueryContext(graph)
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        (tmp_path / DELTA_LOG_NAME).write_text(bad_line + "\n")
        with pytest.raises(ArtifactError):
            load_bundle(graph, tmp_path)
