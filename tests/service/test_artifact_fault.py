"""Crash-safe artifact writes under the torn-write failpoints.

``artifacts:torn_write`` and ``delta:partial_append`` simulate a power cut
mid-write (a truncated file at the FINAL path — the state the atomic
tmp+fsync+rename discipline exists to prevent).  Loads must refuse or
recover, never produce a wrong graph; a clean re-save must repair the
directory in place.
"""

import pytest

from repro.core.registry import QueryContext
from repro.fault import FAULTS, FailpointTriggered
from repro.graph import EdgeDelta, GraphStore, barabasi_albert_graph, graph_fingerprint
from repro.service.artifacts import (
    DELTA_LOG_NAME,
    MANIFEST_NAME,
    ArtifactError,
    StaleArtifactError,
    load_bundle,
    load_manifest,
    read_delta_log_with_report,
    save_artifacts,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture()
def graph():
    return barabasi_albert_graph(60, 3, rng=8)


def _save_with_deltas(graph, directory, rows=(4, 9)):
    edges = graph.edge_array()
    store = GraphStore(graph)
    context = QueryContext(graph)
    for row in rows:
        delta = EdgeDelta(removals=[tuple(map(int, edges[row]))])
        context.apply_delta(delta, graph=store.apply(delta))
    save_artifacts(context, directory, store=store)
    return store


class TestTornManifest:
    def test_torn_write_refuses_then_resave_recovers(self, tmp_path, graph):
        FAULTS.arm("artifacts:torn_write")
        with pytest.raises(FailpointTriggered):
            save_artifacts(QueryContext(graph), tmp_path)
        # the manifest on disk is a truncated prefix — unreadable, not wrong
        assert (tmp_path / MANIFEST_NAME).exists()
        with pytest.raises(ArtifactError, match="corrupt artifact manifest"):
            load_manifest(tmp_path)
        with pytest.raises(ArtifactError):
            load_bundle(graph, tmp_path)
        # a clean warm-up repairs the directory in place (atomic replace)
        save_artifacts(QueryContext(graph), tmp_path)
        restored, _sketch = load_bundle(graph, tmp_path)
        assert restored.epoch == 0

    def test_torn_write_preserves_previous_good_manifest_content(
        self, tmp_path, graph
    ):
        """The torn file is strictly a prefix — no interleaved garbage."""
        FAULTS.arm("artifacts:torn_write")
        with pytest.raises(FailpointTriggered):
            save_artifacts(QueryContext(graph), tmp_path)
        torn = (tmp_path / MANIFEST_NAME).read_bytes()
        save_artifacts(QueryContext(graph), tmp_path)
        clean = (tmp_path / MANIFEST_NAME).read_bytes()
        assert clean.startswith(torn)


class TestPartialAppend:
    def test_partial_append_recovers_to_last_committed_record(self, tmp_path, graph):
        # First save commits epoch 1 cleanly (1 delta in log + manifest).
        edges = graph.edge_array()
        store = GraphStore(graph)
        context = QueryContext(graph)
        delta = EdgeDelta(removals=[tuple(map(int, edges[4]))])
        context.apply_delta(delta, graph=store.apply(delta))
        save_artifacts(context, tmp_path, store=store)
        committed = graph_fingerprint(store.graph)

        # Second save crashes mid-append: record 2 is torn, and the crash
        # happens BEFORE the manifest write, so the manifest still says
        # num_deltas=1 — the torn tail is uncommitted.
        second = EdgeDelta(removals=[tuple(map(int, edges[9]))])
        context.apply_delta(second, graph=store.apply(second))
        FAULTS.arm("delta:partial_append")
        with pytest.raises(FailpointTriggered):
            save_artifacts(context, tmp_path, store=store)

        deltas, report = read_delta_log_with_report(tmp_path / DELTA_LOG_NAME)
        assert len(deltas) == 1 and report.recovered

        # Warm start replays exactly the committed prefix: epoch 1.
        restored, _sketch = load_bundle(graph, tmp_path)
        assert restored.epoch == 1
        assert graph_fingerprint(restored.graph) == committed

    def test_torn_tail_below_manifest_requirement_refuses(self, tmp_path, graph):
        """When the torn record WAS committed (manifest already requires it),
        recovery must refuse rather than serve a shorter lineage."""
        _save_with_deltas(graph, tmp_path, rows=(4, 9))
        log_path = tmp_path / DELTA_LOG_NAME
        log_path.write_bytes(log_path.read_bytes()[:-5])  # tear record 2
        with pytest.raises(StaleArtifactError, match="re-run warm-up"):
            load_bundle(graph, tmp_path)

    def test_extra_uncommitted_records_are_ignored(self, tmp_path, graph):
        """Records past the manifest's num_deltas (a crash after the append
        but before the manifest commit) are truncated away on load."""
        store = _save_with_deltas(graph, tmp_path, rows=(4, 9))
        expected = graph_fingerprint(store.graph)
        log_path = tmp_path / DELTA_LOG_NAME
        from repro.fault import frame_record

        extra = EdgeDelta(removals=[tuple(map(int, graph.edge_array()[14]))])
        with log_path.open("a") as handle:
            handle.write(frame_record(extra.to_json()))
        restored, _sketch = load_bundle(graph, tmp_path)
        assert restored.epoch == 2  # the committed epoch, not 3
        assert graph_fingerprint(restored.graph) == expected
