"""Unit tests for persistent preprocessing artifacts and warm starts."""

import json

import numpy as np
import pytest

import repro.core.registry as registry_module
from repro.core.engine import QueryEngine
from repro.core.registry import QueryContext
from repro.graph.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.service.artifacts import (
    ArtifactError,
    MANIFEST_NAME,
    StaleArtifactError,
    graph_fingerprint,
    has_artifacts,
    load_context,
    load_sketch,
    save_artifacts,
)
from repro.service.sketch import LandmarkSketchStore


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(250, 4, rng=2)


class TestFingerprint:
    def test_identical_graphs_share_fingerprint(self, graph):
        twin = barabasi_albert_graph(250, 4, rng=2)
        assert graph_fingerprint(graph) == graph_fingerprint(twin)

    def test_structural_change_alters_fingerprint(self, graph):
        other = graph.remove_edges([next(graph.edges())])
        assert graph_fingerprint(graph) != graph_fingerprint(other)


class TestSaveLoad:
    def test_round_trip_restores_spectral_state(self, graph, tmp_path):
        context = QueryContext(graph, rng=1)
        save_artifacts(context, tmp_path)
        assert has_artifacts(tmp_path)
        restored = load_context(graph, tmp_path, rng=1)
        assert restored.lambda_max_abs == context.lambda_max_abs
        assert restored.spectral_info == context.spectral_info
        assert restored.delta == context.delta
        assert restored.num_batches == context.num_batches

    def test_warm_start_skips_eigendecomposition(self, graph, tmp_path, monkeypatch):
        save_artifacts(QueryContext(graph, rng=1), tmp_path)

        def _boom(*args, **kwargs):  # any eigen-solve on the warm path is a bug
            raise AssertionError("warm start ran the eigen-decomposition")

        monkeypatch.setattr(registry_module, "transition_eigenvalues", _boom)
        restored = load_context(graph, tmp_path, rng=1)
        assert restored.lambda_max_abs > 0
        assert restored.walk_length(0, 100, 0.1) > 0

    def test_warm_engine_matches_cold_engine_bitwise(self, graph, tmp_path):
        cold = QueryEngine(graph, rng=13)
        pairs = [(0, 100), (5, 200), (17, 42)]
        cold_values = [cold.query(s, t, 0.1).value for s, t in pairs]

        save_artifacts(QueryContext(graph, rng=13), tmp_path)
        warm = QueryEngine(context=load_context(graph, tmp_path, rng=13))
        warm_values = [warm.query(s, t, 0.1).value for s, t in pairs]
        assert warm_values == cold_values  # bit-for-bit, same seed

    def test_warm_matches_cold_on_arpack_sized_graph(self, tmp_path):
        # > 512 nodes takes the ARPACK spectral path; the eigen-solve must not
        # advance the session stream, or warm and cold values would diverge.
        big = barabasi_albert_graph(600, 4, rng=8)
        pairs = [(0, 400), (7, 311), (99, 555)]
        cold = QueryEngine(big, rng=7)
        cold_values = [cold.query(s, t, 0.2, method="amc").value for s, t in pairs]

        save_artifacts(QueryContext(big, rng=7), tmp_path)
        warm = QueryEngine(context=load_context(big, tmp_path, rng=7))
        warm_values = [warm.query(s, t, 0.2, method="amc").value for s, t in pairs]
        assert warm_values == cold_values

    def test_sketch_round_trip_is_bit_exact(self, graph, tmp_path):
        context = QueryContext(graph, rng=1)
        sketch = LandmarkSketchStore.build(graph, num_landmarks=5, strategy="degree")
        save_artifacts(context, tmp_path, sketch=sketch)
        restored = load_sketch(graph, tmp_path)
        assert restored is not None
        assert np.array_equal(restored.landmarks, sketch.landmarks)
        assert np.array_equal(restored.resistances, sketch.resistances)
        assert restored.strategy == "degree"

    def test_load_sketch_none_when_not_saved(self, graph, tmp_path):
        save_artifacts(QueryContext(graph, rng=1), tmp_path)
        assert load_sketch(graph, tmp_path) is None


class TestStalenessAndErrors:
    def test_stale_artifacts_rejected(self, graph, tmp_path):
        save_artifacts(QueryContext(graph, rng=1), tmp_path)
        other = watts_strogatz_graph(250, 6, 0.1, rng=3)
        with pytest.raises(StaleArtifactError):
            load_context(other, tmp_path)

    def test_missing_manifest(self, graph, tmp_path):
        with pytest.raises(ArtifactError):
            load_context(graph, tmp_path / "nowhere")
        assert not has_artifacts(tmp_path / "nowhere")

    def test_corrupt_manifest(self, graph, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError):
            load_context(graph, tmp_path)

    def test_unsupported_format_version(self, graph, tmp_path):
        save_artifacts(QueryContext(graph, rng=1), tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["format_version"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError):
            load_context(graph, tmp_path)

    def test_artifact_files_written_atomically(self, graph, tmp_path):
        sketch = LandmarkSketchStore.build(graph, num_landmarks=3)
        save_artifacts(QueryContext(graph, rng=1), tmp_path, sketch=sketch)
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        assert not (tmp_path / "sketch.npz.tmp").exists()
