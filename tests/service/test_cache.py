"""Unit tests for the ε-aware LRU resistance cache."""

import pytest

from repro.service.cache import CacheEntry, ResistanceCache


class TestEpsilonDominance:
    def test_hit_when_cached_epsilon_dominates(self):
        cache = ResistanceCache()
        cache.put(3, 7, 0.1, 0.42, "geer")
        entry = cache.get(3, 7, 0.1)
        assert entry == CacheEntry(0.42, 0.1, "geer")
        assert cache.get(3, 7, 0.5).value == 0.42  # looser request: still a hit

    def test_miss_when_request_is_tighter(self):
        cache = ResistanceCache()
        cache.put(3, 7, 0.1, 0.42)
        assert cache.get(3, 7, 0.05) is None
        assert cache.stats.misses == 1

    def test_symmetric_keys(self):
        cache = ResistanceCache()
        cache.put(7, 3, 0.1, 0.42)
        assert cache.get(3, 7, 0.1).value == 0.42
        assert (7, 3) in cache and (3, 7) in cache

    def test_tighter_put_refines_entry(self):
        cache = ResistanceCache()
        cache.put(1, 2, 0.5, 0.40)
        assert cache.put(1, 2, 0.1, 0.43) is True
        assert cache.get(1, 2, 0.2).value == 0.43
        assert cache.stats.refinements == 1

    def test_looser_put_is_ignored(self):
        cache = ResistanceCache()
        cache.put(1, 2, 0.1, 0.43)
        assert cache.put(1, 2, 0.5, 0.99) is False
        assert cache.get(1, 2, 0.1).value == 0.43

    def test_zero_epsilon_entry_answers_everything(self):
        cache = ResistanceCache()
        cache.put(1, 2, 0.0, 0.5, "exact")
        assert cache.get(1, 2, 1e-9).value == 0.5

    def test_invalid_epsilon_rejected(self):
        cache = ResistanceCache()
        with pytest.raises(ValueError):
            cache.get(0, 1, 0.0)
        with pytest.raises(ValueError):
            cache.put(0, 1, -0.1, 0.5)


class TestLRU:
    def test_eviction_order(self):
        cache = ResistanceCache(max_entries=2)
        cache.put(0, 1, 0.1, 1.0)
        cache.put(0, 2, 0.1, 2.0)
        cache.get(0, 1, 0.1)  # refresh (0, 1)
        cache.put(0, 3, 0.1, 3.0)  # evicts (0, 2)
        assert cache.get(0, 2, 0.1) is None
        assert cache.get(0, 1, 0.1).value == 1.0
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_dominated_miss_does_not_refresh_recency(self):
        cache = ResistanceCache(max_entries=2)
        cache.put(0, 1, 0.1, 1.0)
        cache.put(0, 2, 0.1, 2.0)
        cache.get(0, 1, 0.05)  # miss: entry too loose, recency untouched
        cache.put(0, 3, 0.1, 3.0)  # evicts (0, 1), the least recently used
        assert cache.get(0, 1, 0.1) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResistanceCache(max_entries=0)

    def test_clear_keeps_stats(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.1, 1.0)
        cache.get(0, 1, 0.1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestPeek:
    def test_peek_returns_entry_regardless_of_epsilon(self):
        cache = ResistanceCache()
        cache.put(3, 7, 0.2, 0.42, "geer")
        assert cache.peek(3, 7).epsilon == 0.2
        assert cache.peek(7, 3).value == 0.42  # symmetric
        assert cache.peek(0, 1) is None

    def test_peek_touches_neither_stats_nor_recency(self):
        cache = ResistanceCache(max_entries=2)
        cache.put(0, 1, 0.1, 1.0)
        cache.put(0, 2, 0.1, 2.0)
        cache.peek(0, 1)  # a probe, not a use
        assert cache.stats.lookups == 0
        cache.put(0, 3, 0.1, 3.0)  # must evict (0, 1): peek kept it LRU-oldest
        assert cache.peek(0, 1) is None
        assert cache.peek(0, 2) is not None


class TestRefine:
    """Background refinements: never resurrect, never loosen, epoch-pinned."""

    def test_tighter_refinement_accepted(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.3, 0.40, "sketch", epoch=5)
        assert cache.refine(0, 1, 0.05, 0.43, "geer", epoch=5, current_epoch=5)
        entry = cache.peek(0, 1)
        assert entry == CacheEntry(0.43, 0.05, "geer", 5)
        assert cache.stats.refinements == 1
        assert cache.stats.dropped_refinements == 0

    def test_refinement_never_creates_an_entry(self):
        cache = ResistanceCache()
        assert not cache.refine(0, 1, 0.05, 0.43, epoch=0, current_epoch=0)
        assert cache.peek(0, 1) is None
        assert cache.stats.dropped_refinements == 1

    def test_evicted_entry_is_not_resurrected(self):
        cache = ResistanceCache(max_entries=1)
        cache.put(0, 1, 0.3, 0.40)
        cache.put(0, 2, 0.3, 0.50)  # evicts (0, 1)
        assert not cache.refine(0, 1, 0.05, 0.43, epoch=0, current_epoch=0)
        assert cache.peek(0, 1) is None
        assert len(cache) == 1

    def test_invalidated_entry_is_not_resurrected(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.3, 0.40)
        cache.invalidate_nodes([1])
        assert not cache.refine(0, 1, 0.05, 0.43, epoch=0, current_epoch=0)
        assert cache.peek(0, 1) is None

    def test_stale_epoch_refinement_dropped(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.3, 0.40, epoch=2)
        assert not cache.refine(0, 1, 0.05, 0.43, epoch=1, current_epoch=2)
        assert cache.peek(0, 1).value == 0.40  # untouched
        assert cache.stats.dropped_refinements == 1

    def test_refinement_never_loosens(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.1, 0.40)
        # equal ε is not tighter: must be rejected too
        assert not cache.refine(0, 1, 0.1, 0.99, epoch=0, current_epoch=0)
        assert not cache.refine(0, 1, 0.5, 0.99, epoch=0, current_epoch=0)
        assert cache.peek(0, 1).value == 0.40
        assert cache.stats.dropped_refinements == 2

    def test_accepted_refinement_refreshes_recency(self):
        cache = ResistanceCache(max_entries=2)
        cache.put(0, 1, 0.3, 1.0)
        cache.put(0, 2, 0.3, 2.0)
        cache.refine(0, 1, 0.05, 1.1, epoch=0, current_epoch=0)
        cache.put(0, 3, 0.3, 3.0)  # evicts (0, 2): the refinement was a use
        assert cache.peek(0, 1) is not None
        assert cache.peek(0, 2) is None

    def test_dropped_refinements_in_summary(self):
        cache = ResistanceCache()
        cache.refine(0, 1, 0.05, 0.4, epoch=0, current_epoch=0)
        assert cache.stats.summary()["dropped_refinements"] == 1


class TestStats:
    def test_summary_shape(self):
        cache = ResistanceCache()
        cache.put(0, 1, 0.1, 1.0)
        cache.get(0, 1, 0.1)
        cache.get(0, 2, 0.1)
        summary = cache.stats.summary()
        assert summary["lookups"] == 2
        assert summary["hits"] == 1
        assert summary["misses"] == 1
        assert summary["hit_rate"] == 0.5
        assert summary["insertions"] == 1
