"""Unit tests for request coalescing: size, deadline and demand flushes."""

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.graph.generators import barabasi_albert_graph
from repro.service.coalesce import RequestCoalescer


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 3, rng=9)


@pytest.fixture()
def engine(graph):
    return QueryEngine(graph, rng=9)


class TestSizeFlush:
    def test_flushes_exactly_at_max_batch(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=3, method="smm")
        first = [coalescer.submit(i, 50 + i, 0.2) for i in range(2)]
        assert not any(p.done for p in first)
        assert len(coalescer) == 2
        third = coalescer.submit(2, 52, 0.2)
        assert third.done and all(p.done for p in first)
        assert len(coalescer) == 0
        assert coalescer.stats.size_flushes == 1
        assert coalescer.stats.flushes == 1

    def test_results_match_direct_engine_queries(self, graph):
        pairs = [(0, 40), (3, 99), (7, 77)]
        direct = QueryEngine(graph, rng=4)
        expected = [direct.query(s, t, 0.2, method="smm").value for s, t in pairs]
        batched = QueryEngine(graph, rng=4)
        coalescer = RequestCoalescer(batched, max_batch=3, method="smm")
        pending = [coalescer.submit(s, t, 0.2) for s, t in pairs]
        np.testing.assert_allclose(
            [p.result().value for p in pending], expected, atol=1e-9
        )


class TestDeadlineFlush:
    def test_flush_on_deadline_at_next_submit(self, engine):
        clock = FakeClock()
        coalescer = RequestCoalescer(
            engine, max_batch=100, max_delay_seconds=0.01, method="smm", clock=clock
        )
        first = coalescer.submit(0, 50, 0.2)
        clock.advance(0.02)
        second = coalescer.submit(1, 51, 0.2)
        assert first.done and second.done
        assert coalescer.stats.deadline_flushes == 1

    def test_poll_flushes_expired_buffer(self, engine):
        clock = FakeClock()
        coalescer = RequestCoalescer(
            engine, max_batch=100, max_delay_seconds=0.01, method="smm", clock=clock
        )
        pending = coalescer.submit(0, 50, 0.2)
        assert coalescer.poll() is False  # deadline not reached yet
        clock.advance(0.5)
        assert coalescer.poll() is True
        assert pending.done
        assert coalescer.stats.deadline_flushes == 1

    def test_deadline_measured_from_oldest_request(self, engine):
        clock = FakeClock()
        coalescer = RequestCoalescer(
            engine, max_batch=100, max_delay_seconds=0.01, method="smm", clock=clock
        )
        coalescer.submit(0, 50, 0.2)
        clock.advance(0.006)
        coalescer.submit(1, 51, 0.2)  # young, but the buffer's oldest is 6ms old
        clock.advance(0.006)
        third = coalescer.submit(2, 52, 0.2)  # oldest now 12ms > 10ms: flush
        assert third.done
        assert coalescer.stats.deadline_flushes == 1


class TestDemandFlushAndCoalescing:
    def test_result_forces_flush(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=100, method="smm")
        pending = coalescer.submit(0, 50, 0.2)
        assert not pending.done
        value = pending.result()
        assert pending.done and value.value == pending.result().value
        assert coalescer.stats.demand_flushes == 1

    def test_duplicate_pairs_execute_once(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=100, method="smm")
        a = coalescer.submit(3, 40, 0.2)
        b = coalescer.submit(40, 3, 0.2)  # reversed duplicate
        c = coalescer.submit(3, 40, 0.3)  # looser duplicate
        coalescer.flush()
        assert a.result().value == b.result().value == c.result().value
        assert coalescer.stats.executed_pairs == 1
        assert coalescer.stats.deduplicated == 2
        assert engine.stats.num_queries == 1

    def test_batch_runs_at_tightest_epsilon(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=100, method="smm")
        loose = coalescer.submit(0, 50, 0.5)
        tight = coalescer.submit(1, 51, 0.05)
        batch = coalescer.flush()
        assert batch.epsilon == 0.05
        assert loose.result().epsilon == tight.result().epsilon == 0.05

    def test_flush_with_empty_buffer_is_noop(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=4, method="smm")
        assert coalescer.flush() is None
        assert coalescer.stats.flushes == 0


class TestFlushFailure:
    def test_failed_batch_settles_every_waiter(self, graph):
        from repro.core.registry import QueryBudget
        from repro.exceptions import BudgetExceededError

        # rp at a tiny dimension cap fails when the sketch is built at flush
        # time — every buffered request must see the error, not just the
        # submitter whose call triggered the flush.
        engine = QueryEngine(graph, rng=9, budget=QueryBudget(rp_max_dimension=1))
        coalescer = RequestCoalescer(engine, max_batch=100, method="rp")
        first = coalescer.submit(0, 50, 0.1)
        second = coalescer.submit(1, 51, 0.1)
        with pytest.raises(BudgetExceededError):
            coalescer.flush()
        assert first.done and second.done
        for pending in (first, second):
            with pytest.raises(BudgetExceededError):
                pending.result()
        assert "failed" in repr(first)


class TestValidation:
    def test_invalid_pair_fails_at_submit(self, engine):
        coalescer = RequestCoalescer(engine, max_batch=4)
        with pytest.raises(ValueError):
            coalescer.submit(0, 10_000, 0.2)
        with pytest.raises(ValueError):
            coalescer.submit(0, 5, -1.0)
        assert len(coalescer) == 0

    def test_invalid_max_batch(self, engine):
        with pytest.raises(ValueError):
            RequestCoalescer(engine, max_batch=0)
