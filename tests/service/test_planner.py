"""Deterministic simulation suite for the cost-based adaptive query planner.

Two halves, matching the two halves of Contract 8:

* **Latency half (pure simulation)** — :class:`QueryPlanner` driven through
  :class:`SimulatedSignals` with an injectable clock and synthetic latency
  observations: no graph, no wall-clock sleeps.  Table-driven cases pin the
  tier choice flipping *exactly* at the modeled cost crossover, plus the
  availability rules (cache ε-dominance, sketch gap, breaker, node cap),
  admission-control inflation, tie-breaking and the EWMA arithmetic.
* **Answer half (property + integration)** — the planner wired into a real
  :class:`ResistanceService` must never change *answers*, only latency: every
  adaptive answer meets the requested ε against the exact oracle on the
  conformance graphs (hypothesis sweeps the pair/ε space), engine-tier
  answers are bit-identical to the static pipeline under the same seed, and
  anytime partials are honest about their envelope.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactEffectiveResistance
from repro.core.walk_length import query_cost_units, refined_walk_length
from repro.graph.builders import with_random_weights
from repro.graph.generators import barabasi_albert_graph, watts_strogatz_graph
from repro.service.planner import (
    PlannerConfig,
    QueryPlanner,
    TIER_ORDER,
    degree_bucket,
)
from repro.service.server import ResistanceService, ServiceConfig

from regen_planner_golden import FakeClock, SimulatedSignals

SEED = 7_2023


def make_planner(*, config=None, clock=None, **signal_kwargs):
    signals = SimulatedSignals(**signal_kwargs)
    planner = QueryPlanner(signals, config=config or PlannerConfig(), clock=clock)
    return planner, signals


# --------------------------------------------------------------------------- #
# cost model building blocks
# --------------------------------------------------------------------------- #
class TestCostPrimitives:
    def test_degree_bucket_is_sorted_floor_log2(self):
        assert degree_bucket(4.0, 4.0) == (2, 2)
        assert degree_bucket(96.0, 3.0) == (1, 6)  # sorted: light endpoint first
        assert degree_bucket(1.0, 1.9) == (0, 0)

    def test_query_cost_units_scale_with_inverse_epsilon_squared(self):
        lam, d = 0.5, 4.0
        tight = query_cost_units(0.05, lam, d, d)
        loose = query_cost_units(0.5, lam, d, d)
        assert tight > loose
        # ℓ grows only logarithmically; the 1/ε² factor dominates the ratio.
        assert tight / loose > (0.5 / 0.05) ** 2 / 10

    def test_higher_degrees_cost_fewer_units(self):
        lam = 0.8
        assert query_cost_units(0.1, lam, 64.0, 64.0) < query_cost_units(
            0.1, lam, 2.0, 2.0
        )

    def test_ewma_first_observation_sets_rate_directly(self):
        planner, _ = make_planner()
        planner.observe_flat("exact", 0.004)
        assert planner.cost_model.predict_flat("exact") == 0.004

    def test_ewma_fold_uses_alpha(self):
        config = PlannerConfig(ewma_alpha=0.25)
        planner, _ = make_planner(config=config)
        planner.observe_flat("exact", 0.004)
        planner.observe_flat("exact", 0.008)
        assert planner.cost_model.predict_flat("exact") == pytest.approx(
            0.25 * 0.008 + 0.75 * 0.004
        )

    def test_engine_rate_falls_back_bucket_then_method_then_prior(self):
        planner, signals = make_planner()
        model = planner.cost_model
        units = 100.0
        prior = planner.config.engine_seconds_per_unit * units
        assert model.predict_engine("geer", (2, 2), units) == pytest.approx(prior)
        model.observe_engine("geer", (2, 2), 1000.0, 0.001)  # rate 1e-6
        assert model.predict_engine("geer", (2, 2), units) == pytest.approx(1e-4)
        # unseen bucket: the per-method aggregate, not the prior
        assert model.predict_engine("geer", (5, 5), units) == pytest.approx(1e-4)
        # unseen method: back to the prior
        assert model.predict_engine("amc", (2, 2), units) == pytest.approx(prior)

    def test_non_positive_observations_are_ignored(self):
        planner, _ = make_planner()
        planner.observe_flat("exact", 0.0)
        planner.observe_flat("exact", -1.0)
        assert planner.cost_model.predict_flat("exact") == pytest.approx(
            planner.config.exact_cost_seconds
        )
        assert planner.stats.observations == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"deadline_safety": 0.0},
            {"admission_queue_depth": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            PlannerConfig(**kwargs)


# --------------------------------------------------------------------------- #
# the crossover table: tier choice flips exactly where the cost model says
# --------------------------------------------------------------------------- #
class TestCrossover:
    """With an engine rate of 1e-6 s/unit and an exact solve of 0.01 s, the
    engine→exact flip must land exactly where ℓ(ε)/ε² crosses 10⁴ units —
    between ε = 0.025 (9 600 units) and ε = 0.024 (10 417 units) for λ = 0.5
    and degree-4 endpoints."""

    RATE = 1e-6
    EXACT_SECONDS = 0.01

    @pytest.fixture()
    def planner(self):
        planner, _signals = make_planner()
        # ε=0.5 on degree-4/λ=0.5 endpoints is exactly 4 cost units, so one
        # 4µs observation pins the bucket rate at exactly 1e-6 s/unit.
        assert query_cost_units(0.5, 0.5, 4.0, 4.0) == pytest.approx(4.0)
        planner.observe_engine("geer", 0, 1, 0.5, 4.0 * self.RATE)
        planner.observe_flat("exact", self.EXACT_SECONDS)
        return planner

    @pytest.mark.parametrize(
        "epsilon, expected_tier",
        [
            (0.3, "engine"),
            (0.05, "engine"),
            (0.025, "engine"),  # 9 600 units -> 9.6 ms < 10 ms
            (0.024, "exact"),  # 10 416.7 units -> 10.4 ms > 10 ms
            (0.01, "exact"),
        ],
    )
    def test_tier_flips_at_modeled_crossover(self, planner, epsilon, expected_tier):
        decision = planner.decide(0, 1, epsilon)
        assert decision.tier == expected_tier
        # the decision records both candidate costs for the audit trail
        units = query_cost_units(epsilon, 0.5, 4.0, 4.0)
        assert decision.predicted["engine"] == pytest.approx(units * self.RATE)
        assert decision.predicted["exact"] == pytest.approx(self.EXACT_SECONDS)

    def test_crossover_epsilon_is_where_the_model_says(self, planner):
        """Sanity on the table itself: the unit counts bracket 10⁴."""
        assert query_cost_units(0.025, 0.5, 4.0, 4.0) < 1e4
        assert query_cost_units(0.024, 0.5, 4.0, 4.0) > 1e4

    def test_recalibration_moves_the_crossover(self, planner):
        """A 10× faster engine observation pulls ε=0.01 back to the engine."""
        decision = planner.decide(0, 1, 0.01)
        assert decision.tier == "exact"
        # EWMA the rate down hard: many fast observations at the same bucket
        for _ in range(40):
            planner.observe_engine("geer", 0, 1, 0.5, 4.0 * self.RATE / 100.0)
        assert planner.decide(0, 1, 0.01).tier == "engine"


# --------------------------------------------------------------------------- #
# availability rules
# --------------------------------------------------------------------------- #
class TestAvailability:
    def test_cache_dominance_boundary(self):
        planner, signals = make_planner()
        signals.cached[(0, 1)] = 0.1
        assert "cache" in planner.decide(0, 1, 0.25).predicted
        assert "cache" in planner.decide(0, 1, 0.1).predicted  # equality counts
        assert "cache" not in planner.decide(0, 1, 0.05).predicted

    def test_cache_wins_when_available(self):
        planner, signals = make_planner()
        signals.cached[(0, 1)] = 0.1
        decision = planner.decide(0, 1, 0.25)
        assert decision.tier == "cache" and decision.reason == "cheapest"

    def test_sketch_gap_boundary(self):
        planner, signals = make_planner()
        signals.gaps[(0, 1)] = 0.08
        assert "sketch" in planner.decide(0, 1, 0.08).predicted
        assert "sketch" not in planner.decide(0, 1, 0.0799).predicted
        assert "sketch" not in planner.decide(2, 3, 0.5).predicted  # no gap known

    def test_exact_gated_by_node_cap(self):
        planner, _ = make_planner(num_nodes=30_000)
        assert "exact" not in planner.decide(0, 1, 0.1).predicted
        small, _ = make_planner(num_nodes=100)
        assert "exact" in small.decide(0, 1, 0.1).predicted

    def test_open_breaker_removes_engine(self):
        planner, signals = make_planner()
        signals.breaker = "open"
        decision = planner.decide(0, 1, 0.1)
        assert "engine" not in decision.predicted
        assert decision.tier != "engine"
        assert decision.signals["breaker"] == "open"

    def test_half_open_breaker_keeps_engine(self):
        planner, signals = make_planner()
        signals.breaker = "half_open"
        assert "engine" in planner.decide(0, 1, 0.1).predicted

    def test_queue_depth_doubles_engine_cost_at_admission_depth(self):
        planner, signals = make_planner()
        base = planner.decide(0, 1, 0.1).predicted["engine"]
        signals.queue = planner.config.admission_queue_depth
        assert planner.decide(0, 1, 0.1).predicted["engine"] == pytest.approx(
            2.0 * base
        )
        signals.queue = 4 * planner.config.admission_queue_depth
        assert planner.decide(0, 1, 0.1).predicted["engine"] == pytest.approx(
            5.0 * base
        )

    def test_queue_does_not_inflate_lookup_tiers(self):
        planner, signals = make_planner()
        signals.cached[(0, 1)] = 0.01
        signals.queue = 64
        decision = planner.decide(0, 1, 0.1)
        assert decision.predicted["cache"] == pytest.approx(
            planner.config.cache_cost_seconds
        )

    def test_tie_break_follows_tier_order(self):
        config = PlannerConfig(cache_cost_seconds=1e-5, sketch_cost_seconds=1e-5)
        planner, signals = make_planner(config=config)
        signals.cached[(0, 1)] = 0.01
        signals.gaps[(0, 1)] = 0.01
        decision = planner.decide(0, 1, 0.1)
        assert decision.predicted["cache"] == decision.predicted["sketch"]
        assert decision.tier == "cache"
        assert TIER_ORDER.index("cache") < TIER_ORDER.index("sketch")


# --------------------------------------------------------------------------- #
# deadlines and the anytime tier
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_no_deadline_never_picks_anytime(self):
        planner, signals = make_planner()
        signals.gaps[(0, 1)] = 0.5
        for epsilon in (0.01, 0.1, 0.5):
            assert planner.decide(0, 1, epsilon).tier != "anytime"

    def test_generous_deadline_keeps_cheapest(self):
        planner, _ = make_planner()
        decision = planner.decide(0, 1, 0.1, deadline_seconds=10.0)
        assert decision.reason == "cheapest"

    def test_unmeetable_deadline_with_envelope_goes_anytime(self):
        planner, signals = make_planner()
        signals.gaps[(0, 1)] = 0.3  # looser than ε: sketch tier unavailable
        decision = planner.decide(0, 1, 0.02, deadline_seconds=1e-9)
        assert decision.tier == "anytime"
        assert decision.reason == "anytime-envelope"
        assert decision.refine is True
        assert decision.predicted["anytime"] == pytest.approx(
            planner.cost_model.predict_flat("sketch")
        )

    def test_anytime_respects_refine_toggle(self):
        config = PlannerConfig(refine_in_background=False)
        planner, signals = make_planner(config=config)
        signals.gaps[(0, 1)] = 0.3
        decision = planner.decide(0, 1, 0.02, deadline_seconds=1e-9)
        assert decision.tier == "anytime" and decision.refine is False

    def test_unmeetable_deadline_without_envelope_is_reported(self):
        planner, _ = make_planner()
        decision = planner.decide(0, 1, 0.02, deadline_seconds=1e-9)
        assert decision.reason == "deadline-unmeetable"
        assert decision.tier in decision.predicted  # still serves the cheapest

    def test_deadline_safety_margin_is_applied(self):
        """A deadline that fits the raw cost but not cost/safety still degrades."""
        config = PlannerConfig(deadline_safety=0.5)
        planner, signals = make_planner(config=config)
        signals.gaps[(0, 1)] = 0.5
        planner.observe_flat("exact", 1.0)
        planner.observe_engine("geer", 0, 1, 0.5, 10.0)  # engine slower still
        cheapest = planner.decide(0, 1, 0.01).predicted
        floor = min(cheapest.values())
        # budget = deadline * 0.5; pick a deadline between floor and 2*floor
        decision = planner.decide(0, 1, 0.01, deadline_seconds=1.5 * floor)
        assert decision.reason == "anytime-envelope"


# --------------------------------------------------------------------------- #
# bookkeeping: stats, history, explain, clock
# --------------------------------------------------------------------------- #
class TestBookkeeping:
    def test_decisions_counted_per_tier(self):
        planner, signals = make_planner()
        signals.cached[(0, 1)] = 0.01
        planner.decide(0, 1, 0.1)
        planner.decide(2, 3, 0.1)
        assert planner.stats.decisions == 2
        assert planner.stats.tier_decisions["cache"] == 1
        assert sum(planner.stats.tier_decisions.values()) == 2

    def test_explain_leaves_no_trace(self):
        planner, _ = make_planner()
        decision = planner.explain(0, 1, 0.1)
        assert decision.tier in TIER_ORDER
        assert planner.stats.decisions == 0
        assert len(planner.decisions) == 0

    def test_decision_ring_is_bounded(self):
        planner, _ = make_planner(config=PlannerConfig(decision_history=4))
        for index in range(7):
            planner.decide(0, 1, 0.1 + index * 0.01)
        assert len(planner.decisions) == 4
        assert planner.decisions[-1].epsilon == pytest.approx(0.16)

    def test_injected_clock_timestamps_decisions(self):
        clock = FakeClock(start=100.0)
        planner, _ = make_planner(clock=clock)
        assert planner.decide(0, 1, 0.1).at == 100.0
        clock.tick(2.5)
        assert planner.decide(0, 1, 0.1).at == 102.5

    def test_no_clock_means_no_timestamp(self):
        planner, _ = make_planner()
        assert planner.decide(0, 1, 0.1).at is None

    def test_decision_signals_are_audit_complete(self):
        planner, signals = make_planner()
        signals.queue = 3
        decision = planner.decide(0, 1, 0.2)
        for key in (
            "cached_epsilon", "sketch_gap", "queue_depth", "breaker",
            "degree_bucket", "cost_units", "lambda_max_abs",
        ):
            assert key in decision.signals
        assert decision.signals["queue_depth"] == 3
        round_trip = decision.to_dict()
        assert round_trip["tier"] == decision.tier
        assert round_trip["predicted"] == decision.predicted

    def test_simulation_is_deterministic(self):
        """Same synthetic workload, two fresh planners, identical traces."""
        def run():
            planner, signals = make_planner(clock=FakeClock())
            out = []
            signals.cached[(0, 1)] = 0.05
            out.append(planner.decide(0, 1, 0.1).to_dict())
            planner.observe_engine("geer", 2, 3, 0.25, 0.004)
            out.append(planner.decide(2, 3, 0.1).to_dict())
            signals.breaker = "open"
            out.append(planner.decide(2, 3, 0.1, deadline_seconds=0.5).to_dict())
            return out

        assert run() == run()

    def test_metrics_samples_track_counters(self):
        planner, _ = make_planner()
        planner.record_fallback("cache")
        planner.stats.refinements_scheduled = 3
        names = {s.name: s.value for s in planner.metrics_samples()}
        assert names["repro_planner_fallbacks_total"] == 1.0
        assert names["repro_planner_refinements_scheduled_total"] == 3.0


# --------------------------------------------------------------------------- #
# answer half: the planner never changes answers, only latency (Contract 8)
# --------------------------------------------------------------------------- #
GRAPHS = {
    "ba-unweighted": barabasi_albert_graph(40, 3, rng=8),
    "ws-unweighted": watts_strogatz_graph(36, 4, 0.2, rng=9),
}
GRAPHS["ba-weighted"] = with_random_weights(
    GRAPHS["ba-unweighted"], low=0.5, high=2.5, rng=18
)
GRAPHS["ws-weighted"] = with_random_weights(
    GRAPHS["ws-unweighted"], low=0.25, high=4.0, rng=19
)
ORACLES = {name: ExactEffectiveResistance(g) for name, g in GRAPHS.items()}

#: geer's conformance tolerance (tests/test_conformance.py): 1.0·ε + 0.05.
def _tolerance(epsilon: float) -> float:
    return 1.0 * epsilon + 0.05


def _adaptive_service(graph, **planner_overrides):
    planner_config = PlannerConfig(refine_in_background=False, **planner_overrides)
    config = ServiceConfig(planner="adaptive", planner_config=planner_config)
    return ResistanceService(graph, config=config, rng=SEED)


@pytest.fixture(scope="module")
def adaptive_services():
    """One long-lived adaptive service per conformance graph: queries share
    cache/cost-model state across examples, exactly like production traffic."""
    return {name: _adaptive_service(graph) for name, graph in GRAPHS.items()}


@pytest.fixture(scope="module")
def no_exact_services():
    """The same, with the exact tier disabled so tight ε exercises the engine."""
    return {
        name: _adaptive_service(graph, exact_max_nodes=0)
        for name, graph in GRAPHS.items()
    }


CONFORMANCE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestAnswerConformance:
    @CONFORMANCE_SETTINGS
    @given(
        graph_name=st.sampled_from(sorted(GRAPHS)),
        s=st.integers(min_value=0, max_value=35),
        t=st.integers(min_value=0, max_value=35),
        epsilon=st.sampled_from([0.1, 0.2, 0.35, 0.5]),
    )
    def test_every_adaptive_answer_meets_epsilon(
        self, adaptive_services, graph_name, s, t, epsilon
    ):
        """Whatever tier the planner picks, the answer is within ε of exact."""
        if s == t:
            return
        service = adaptive_services[graph_name]
        result = service.query(s, t, epsilon)
        exact = ORACLES[graph_name].query(s, t)
        assert not result.details.get("partial", False)  # no deadline given
        assert abs(result.value - exact) <= _tolerance(epsilon), (
            f"{graph_name}: tier {result.details.get('plan')} answered "
            f"r({s},{t}) = {result.value:.4f} vs exact {exact:.4f} at ε={epsilon}"
        )

    @CONFORMANCE_SETTINGS
    @given(
        graph_name=st.sampled_from(sorted(GRAPHS)),
        s=st.integers(min_value=0, max_value=35),
        t=st.integers(min_value=0, max_value=35),
        epsilon=st.sampled_from([0.15, 0.35]),
    )
    def test_engine_routed_answers_meet_epsilon(
        self, no_exact_services, graph_name, s, t, epsilon
    ):
        """With the exact tier gated off, sampling tiers still meet ε."""
        if s == t:
            return
        service = no_exact_services[graph_name]
        result = service.query(s, t, epsilon)
        exact = ORACLES[graph_name].query(s, t)
        assert abs(result.value - exact) <= _tolerance(epsilon)


class TestContract8Determinism:
    def test_engine_tier_is_bit_identical_to_static_pipeline(self):
        """Same seed, same pair, planner on vs off: identical engine answers.

        The adaptive engine tier runs the session-stream execution unchanged,
        so routing through the planner must not shift a single sample."""
        graph = GRAPHS["ba-unweighted"]
        static = ResistanceService(
            graph, config=ServiceConfig(use_cache=False, use_sketch=False), rng=SEED
        )
        adaptive = ResistanceService(
            graph,
            config=ServiceConfig(
                use_cache=False,
                use_sketch=False,
                planner="adaptive",
                planner_config=PlannerConfig(
                    refine_in_background=False, exact_max_nodes=0
                ),
            ),
            rng=SEED,
        )
        pairs = [(0, 11), (3, 27), (5, 30)]
        for s, t in pairs:
            a = adaptive.query(s, t, 0.3)
            b = static.query(s, t, 0.3)
            assert a.details["plan"] == "engine"
            assert a.value == b.value  # bit-identical, not approx
            assert a.total_steps == b.total_steps

    def test_adaptive_service_is_reproducible_end_to_end(self):
        """Two identically seeded adaptive services replay identical values."""
        graph = GRAPHS["ws-weighted"]
        sequence = [(0, 9, 0.3), (4, 20, 0.15), (0, 9, 0.3), (7, 31, 0.5)]

        def run():
            service = _adaptive_service(graph)
            return [
                (service.query(s, t, eps).value, service.query(s, t, eps).method)
                for s, t, eps in sequence
            ]

        assert run() == run()


class TestAnytimeIntegration:
    def test_partial_envelope_then_background_refinement(self):
        graph = GRAPHS["ba-unweighted"]
        config = ServiceConfig(
            planner="adaptive",
            planner_config=PlannerConfig(refine_in_background=True),
        )
        service = ResistanceService(graph, config=config, rng=SEED)
        try:
            oracle = ORACLES["ba-unweighted"]
            # find a pair whose envelope is genuinely looser than ε=0.05
            pair = None
            for s in range(graph.num_nodes):
                for t in range(s + 1, graph.num_nodes):
                    gap = service.sketch.gap(s, t)
                    if gap is not None and gap > 0.2:
                        pair = (s, t)
                        break
                if pair:
                    break
            assert pair is not None, "sketch too tight for an anytime fixture"
            s, t = pair

            result = service.query(s, t, 0.05, deadline_seconds=1e-9)
            assert result.details["partial"] is True
            assert result.details["plan"] == "anytime"
            assert result.details["refining"] is True
            half_width = result.details["half_width"]
            # the partial is honest: within its *published* envelope
            exact = oracle.query(s, t)
            assert result.details["lower"] - 1e-9 <= exact <= result.details["upper"] + 1e-9
            assert abs(result.value - exact) <= half_width + 1e-9

            service._refiner.drain()
            assert service.planner.stats.refinements_completed == 1
            entry = service.cache.peek(s, t)
            assert entry is not None and entry.epsilon <= 0.05
            # the refined answer now serves the tight ε from cache
            refined = service.query(s, t, 0.05)
            assert refined.method == "cache"
            assert abs(refined.value - exact) <= _tolerance(0.05)
        finally:
            service.close()

    def test_stale_epoch_refinement_is_dropped(self):
        """A refinement pinned to an older epoch never lands (Contract 6/8)."""
        from types import SimpleNamespace

        graph = GRAPHS["ba-unweighted"]
        service = _adaptive_service(graph)
        service.query(0, 11, 0.3)  # seed a cache entry through the planner
        stale = SimpleNamespace(
            s=0, t=11, epsilon=0.01, value=1.234, method="geer",
            budget_exhausted=False, elapsed_seconds=0.001,
        )
        before = service.cache.peek(0, 11)
        accepted = service._complete_refinement(stale, epoch=service.epoch - 1)
        assert accepted is False
        assert service.planner.stats.refinements_dropped == 1
        assert service.cache.peek(0, 11) == before  # untouched, not resurrected

    def test_refinement_never_loosens_cache(self):
        graph = GRAPHS["ba-unweighted"]
        service = _adaptive_service(graph)
        service.query(0, 11, 0.1)
        from types import SimpleNamespace

        looser = SimpleNamespace(
            s=0, t=11, epsilon=0.4, value=9.9, method="geer",
            budget_exhausted=False, elapsed_seconds=0.001,
        )
        assert service._complete_refinement(looser, epoch=service.epoch) is False
        entry = service.cache.peek(0, 11)
        assert entry.epsilon <= 0.1 and entry.value != 9.9
