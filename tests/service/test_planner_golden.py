"""Golden decision-trace regression for the adaptive planner.

Replays the pinned synthetic workload from ``tests/regen_planner_golden.py``
and compares every emitted :class:`PlanDecision` — tier, reason, predicted
costs, recorded signals, timestamps — against ``tests/data/planner_golden.json``.
The workload is pure float arithmetic on fixed inputs, so the comparison is
exact: any drift in routing or EWMA math fails here first.

Regenerate (only after an *intentional* planner change) with::

    PYTHONPATH=src python tests/regen_planner_golden.py
"""

from __future__ import annotations

import json

import pytest

from regen_planner_golden import (
    GOLDEN_PATH,
    WORKLOAD_VERSION,
    build_planner,
    run_workload,
)


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():  # pragma: no cover - fixture missing
        pytest.fail(
            "tests/data/planner_golden.json is missing; run "
            "`PYTHONPATH=src python tests/regen_planner_golden.py`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def replay():
    planner, signals, clock = build_planner()
    decisions = run_workload(planner, signals, clock)
    return planner, decisions


def test_workload_version_matches(golden):
    assert golden["workload_version"] == WORKLOAD_VERSION


def test_decision_trace_is_bit_identical(golden, replay):
    _, decisions = replay
    assert len(decisions) == len(golden["decisions"])
    for index, (got, want) in enumerate(zip(decisions, golden["decisions"])):
        assert got == want, f"decision #{index} drifted:\n got {got}\nwant {want}"


def test_cost_model_snapshot_matches(golden, replay):
    planner, _ = replay
    assert planner.cost_model.snapshot() == golden["cost_model"]


def test_stats_match(golden, replay):
    planner, _ = replay
    assert planner.stats.summary() == golden["stats"]


def test_trace_covers_every_tier_and_reason(golden):
    """The pinned workload must keep exercising all routing branches."""
    tiers = {decision["tier"] for decision in golden["decisions"]}
    reasons = {decision["reason"] for decision in golden["decisions"]}
    assert {"cache", "sketch", "exact", "engine", "anytime"} <= tiers
    assert {"cheapest", "anytime-envelope", "deadline-unmeetable"} <= reasons
