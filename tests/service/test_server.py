"""Integration tests for the ResistanceService facade (the PR's acceptance bar)."""

import numpy as np
import pytest

import repro.core.registry as registry_module
from repro.core.engine import QueryEngine
from repro.graph.generators import barabasi_albert_graph
from repro.service.server import ResistanceService, ServiceConfig


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(250, 4, rng=6)


def _engine_only_config(**overrides):
    return ServiceConfig(use_cache=True, use_sketch=False, **overrides)


class TestCachePath:
    def test_repeated_query_served_from_cache_with_zero_walk_steps(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        first = service.query(3, 99, 0.1)
        assert first.details["source"] == "engine"
        assert first.total_steps > 0

        steps_before = service.engine.stats.total_steps
        queries_before = service.engine.stats.num_queries
        second = service.query(3, 99, 0.1)
        assert second.method == "cache"
        assert second.value == first.value
        assert second.total_steps == 0 and second.spmv_operations == 0
        # The engine did no work at all for the repeat: zero new walk steps.
        assert service.engine.stats.total_steps == steps_before
        assert service.engine.stats.num_queries == queries_before
        assert service.stats.cache_hits == 1

    def test_cache_serves_looser_epsilon(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        service.query(3, 99, 0.1)
        looser = service.query(99, 3, 0.4)  # reversed and looser: still a hit
        assert looser.method == "cache"
        tighter = service.query(3, 99, 0.01)  # tighter: must re-run the engine
        assert tighter.details["source"] == "engine"

    def test_budget_exhausted_results_never_cached(self, graph):
        from repro.core.registry import QueryBudget

        service = ResistanceService(
            graph,
            config=_engine_only_config(method="amc"),
            rng=7,
            budget=QueryBudget(max_total_steps=50),
        )
        cut_off = service.query(3, 99, 0.05)
        assert cut_off.budget_exhausted  # sanity: the cap actually triggered
        # The unguaranteed value must not be served as an ε-answer later.
        repeat = service.query(3, 99, 0.05)
        assert repeat.method != "cache"
        assert service.stats.cache_hits == 0

    def test_batch_results_populate_cache_via_hook(self, graph):
        service = ResistanceService(
            graph, config=_engine_only_config(method="smm"), rng=7
        )
        pairs = [(0, 40), (3, 99), (7, 77)]
        service.query_many(pairs, 0.2)
        for s, t in pairs:
            assert service.query(s, t, 0.2).method == "cache"


class TestSketchPath:
    def test_sketch_hit_avoids_engine(self, graph):
        service = ResistanceService(graph, rng=7)
        landmark = int(service.sketch.landmarks[0])
        other = 17 if landmark != 17 else 18
        result = service.query(landmark, other, 0.1)
        assert result.method == "sketch"
        assert result.total_steps == 0
        assert service.engine.stats.num_queries == 0
        assert result.value == pytest.approx(service.exact(landmark, other), abs=1e-6)

    def test_sketch_answer_feeds_cache(self, graph):
        service = ResistanceService(graph, rng=7)
        landmark = int(service.sketch.landmarks[0])
        other = 17 if landmark != 17 else 18
        service.query(landmark, other, 0.1)
        repeat = service.query(landmark, other, 0.1)
        assert repeat.method == "cache"
        assert service.stats.sketch_hits == 1 and service.stats.cache_hits == 1

    def test_sketch_disabled_above_max_nodes(self, graph):
        config = ServiceConfig(sketch_max_nodes=10)
        service = ResistanceService(graph, config=config, rng=7)
        assert service.sketch is None

    def test_sketch_values_respect_epsilon(self, graph):
        service = ResistanceService(graph, rng=7)
        rng = np.random.default_rng(0)
        for _ in range(25):
            s, t = map(int, rng.choice(graph.num_nodes, size=2, replace=False))
            result = service.query(s, t, 0.25)
            if result.method == "sketch":
                assert abs(result.value - service.exact(s, t)) <= 0.25 + 1e-7


class TestQueryMany:
    def test_order_preserved_and_sources_mixed(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        service.query(3, 99, 0.2)  # warm one pair
        results = service.query_many([(0, 40), (3, 99), (7, 77)], 0.2)
        assert [(r.s, r.t) for r in results] == [(0, 40), (3, 99), (7, 77)]
        assert results[1].method == "cache"
        assert results[0].details["source"] == "engine"

    def test_duplicate_pairs_execute_once(self, graph):
        service = ResistanceService(
            graph, config=_engine_only_config(method="smm"), rng=7
        )
        results = service.query_many([(0, 40), (40, 0), (0, 40), (3, 99)], 0.2)
        assert service.engine.stats.num_queries == 2  # two distinct pairs
        assert results[0].value == results[1].value == results[2].value
        assert service.stats.engine_queries == 2
        assert service.stats.requests == 4

    def test_all_hits_skip_engine_entirely(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        pairs = [(0, 40), (3, 99)]
        service.query_many(pairs, 0.2)
        queries_before = service.engine.stats.num_queries
        service.query_many(pairs, 0.3)
        assert service.engine.stats.num_queries == queries_before


class TestCoalescedSubmit:
    def test_submit_resolves_layer_hits_immediately(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        service.query(3, 99, 0.2)
        pending = service.submit(3, 99, 0.2)
        assert pending.done and pending.result().method == "cache"
        assert service.stats.coalesced_submissions == 0
        # A layer hit must not instantiate the coalescer as a side effect.
        assert service._coalescer is None
        assert "coalescer" not in service.summary()

    def test_coalesced_duplicates_not_counted_as_engine_queries(self, graph):
        config = _engine_only_config(method="smm", coalesce_max_batch=100)
        service = ResistanceService(graph, config=config, rng=7)
        pending = [service.submit(0, 100, 0.2) for _ in range(5)]
        service.flush()
        assert all(p.done for p in pending)
        # Five submissions coalesced into one executed engine query.
        assert service.stats.coalesced_submissions == 5
        assert service.stats.engine_queries == 1
        assert service.engine.stats.num_queries == 1

    def test_submit_misses_flush_through_plan(self, graph):
        config = _engine_only_config(method="smm", coalesce_max_batch=3)
        service = ResistanceService(graph, config=config, rng=7)
        pending = [service.submit(i, 100 + i, 0.2) for i in range(3)]
        assert all(p.done for p in pending)  # size flush at 3
        assert service.coalescer.stats.size_flushes == 1
        # And the flushed results were cached for the next round.
        assert service.query(0, 100, 0.2).method == "cache"

    def test_flush_resolves_stragglers(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        pending = service.submit(0, 100, 0.2)
        assert not pending.done
        service.flush()
        assert pending.done


class TestWarmStart:
    def test_warm_service_skips_eigendecomposition_and_matches_cold(
        self, graph, tmp_path, monkeypatch
    ):
        pairs = [(0, 100), (5, 200), (17, 42)]
        cold = QueryEngine(graph, rng=21)
        cold_values = [cold.query(s, t, 0.1).value for s, t in pairs]

        builder = ResistanceService(graph, rng=21)
        builder.warm_up()
        builder.save_artifacts(tmp_path)

        def _boom(*args, **kwargs):
            raise AssertionError("warm service start ran the eigen-decomposition")

        monkeypatch.setattr(registry_module, "transition_eigenvalues", _boom)
        warm = ResistanceService(graph, rng=21, artifact_dir=tmp_path)
        assert warm.warm_started
        # Bypass cache/sketch shortcuts to compare raw engine values.
        warm_values = [warm.engine.query(s, t, 0.1).value for s, t in pairs]
        assert warm_values == cold_values

    def test_warm_start_restores_sketch(self, graph, tmp_path):
        builder = ResistanceService(graph, rng=7)
        builder.warm_up()
        builder.save_artifacts(tmp_path)
        warm = ResistanceService(graph, rng=7, artifact_dir=tmp_path)
        assert warm.sketch is not None
        assert np.array_equal(warm.sketch.resistances, builder.sketch.resistances)

    def test_warm_start_honours_caller_config_over_manifest(self, graph, tmp_path):
        builder = ResistanceService(graph, rng=7)  # manifest gets delta=0.01
        builder.warm_up()
        builder.save_artifacts(tmp_path)
        config = ServiceConfig(delta=0.001, num_batches=7)
        warm = ResistanceService(graph, config=config, rng=7, artifact_dir=tmp_path)
        assert warm.engine.delta == 0.001
        assert warm.engine.num_batches == 7

    def test_cold_start_when_directory_empty(self, graph, tmp_path):
        service = ResistanceService(graph, rng=7, artifact_dir=tmp_path / "empty")
        assert not service.warm_started

    def test_save_requires_a_directory(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        with pytest.raises(ValueError):
            service.save_artifacts()


class TestStatsAndValidation:
    def test_summary_reports_every_active_layer(self, graph):
        service = ResistanceService(graph, rng=7)
        service.query(0, 100, 0.2)
        service.query(0, 100, 0.2)
        summary = service.summary()
        assert set(summary) >= {"service", "cache", "sketch", "session"}
        assert summary["service"]["requests"] == 2
        assert summary["service"]["offload_rate"] > 0

    def test_invalid_inputs_rejected(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        with pytest.raises(ValueError):
            service.query(0, 10_000, 0.1)
        with pytest.raises(ValueError):
            service.query(0, 1, 0.0)
        with pytest.raises(ValueError):
            ResistanceService()

    def test_unknown_method_surfaces_as_value_error(self, graph):
        service = ResistanceService(graph, config=_engine_only_config(), rng=7)
        with pytest.raises(ValueError):
            service.query(0, 1, 0.1, method="bogus")
