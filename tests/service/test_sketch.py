"""Unit tests for the landmark sketch store: bound validity and exact hits."""

import numpy as np
import pytest

from repro.exceptions import GraphStructureError
from repro.graph.generators import barabasi_albert_graph, dumbbell_graph, grid_graph
from repro.linalg.solvers import LaplacianSolver
from repro.service.sketch import LandmarkSketchStore


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(150, 3, rng=5)


@pytest.fixture(scope="module")
def store(graph):
    return LandmarkSketchStore.build(graph, num_landmarks=6)


@pytest.fixture(scope="module")
def solver(graph):
    return LaplacianSolver(graph)


class TestBoundValidity:
    def test_envelope_contains_exact_value(self, graph, store, solver):
        rng = np.random.default_rng(1)
        for _ in range(60):
            s, t = map(int, rng.choice(graph.num_nodes, size=2, replace=False))
            exact = solver.effective_resistance(s, t)
            answer = store.bounds(s, t)
            assert answer.lower <= exact + 1e-7
            assert answer.upper >= exact - 1e-7
            assert answer.lower <= answer.upper

    def test_landmark_queries_are_exact(self, store, solver):
        for landmark in map(int, store.landmarks):
            other = 17 if landmark != 17 else 18
            answer = store.bounds(landmark, other)
            exact = solver.effective_resistance(landmark, other)
            assert answer.half_width <= 1e-7
            assert answer.midpoint == pytest.approx(exact, abs=1e-6)

    def test_same_node_is_zero(self, store):
        answer = store.bounds(9, 9)
        assert answer.lower == answer.upper == 0.0

    def test_bounds_on_structured_graphs(self):
        # A dumbbell stresses the bounds: cross-bar pairs have resistance
        # dominated by the bridge, which any landmark on either side captures.
        for graph in (dumbbell_graph(20, 4), grid_graph(6, 6)):
            store = LandmarkSketchStore.build(graph, num_landmarks=4)
            solver = LaplacianSolver(graph)
            rng = np.random.default_rng(3)
            for _ in range(20):
                s, t = map(int, rng.choice(graph.num_nodes, size=2, replace=False))
                exact = solver.effective_resistance(s, t)
                answer = store.bounds(s, t)
                assert answer.lower <= exact + 1e-7 <= answer.upper + 2e-7


class TestQuery:
    def test_query_answers_within_epsilon(self, graph, store, solver):
        rng = np.random.default_rng(2)
        hits = 0
        for _ in range(40):
            s, t = map(int, rng.choice(graph.num_nodes, size=2, replace=False))
            answer = store.query(s, t, 0.2)
            if answer is None:
                continue
            hits += 1
            exact = solver.effective_resistance(s, t)
            assert abs(answer.midpoint - exact) <= 0.2 + 1e-7
        assert hits > 0  # ε=0.2 is loose enough for a BA graph to hit often
        assert store.stats.hits == hits

    def test_query_declines_when_gap_too_wide(self, store):
        # ε below achievable precision for a non-landmark pair: must decline
        # rather than serve an invalid answer (unless the envelope is exact).
        non_landmarks = [
            v for v in range(store.graph.num_nodes) if not store.is_landmark(v)
        ]
        s, t = non_landmarks[0], non_landmarks[1]
        answer = store.bounds(s, t)
        if answer.half_width > 0:
            epsilon = answer.half_width / 2
            assert store.query(s, t, epsilon) is None


class TestConstruction:
    def test_degree_strategy_picks_top_degrees(self, graph):
        landmarks = LandmarkSketchStore.select_landmarks(graph, 5, strategy="degree")
        degrees = graph.degrees
        cutoff = np.sort(degrees)[::-1][4]
        assert all(degrees[l] >= cutoff for l in landmarks)

    def test_random_strategy_is_seeded(self, graph):
        a = LandmarkSketchStore.select_landmarks(graph, 5, strategy="random", rng=3)
        b = LandmarkSketchStore.select_landmarks(graph, 5, strategy="random", rng=3)
        assert np.array_equal(a, b)
        assert len(np.unique(a)) == 5

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(ValueError):
            LandmarkSketchStore.select_landmarks(graph, 5, strategy="bogus")

    def test_num_landmarks_clamped_to_graph(self):
        graph = grid_graph(2, 2)
        store = LandmarkSketchStore.build(graph, num_landmarks=50)
        assert store.num_landmarks == graph.num_nodes

    def test_disconnected_graph_rejected(self):
        from repro.graph.builders import from_edges

        graph = from_edges([(0, 1), (2, 3)], num_nodes=4)
        with pytest.raises(GraphStructureError):
            LandmarkSketchStore.build(graph, num_landmarks=2)

    def test_shape_validation(self, graph):
        with pytest.raises(ValueError):
            LandmarkSketchStore(graph, np.array([0, 1]), np.zeros((3, graph.num_nodes)))

    def test_resistances_match_solver(self, graph, store, solver):
        # Spot-check the stored matrix itself, not just the bounds it implies.
        for i, landmark in enumerate(map(int, store.landmarks[:3])):
            for v in (10, 77, 149):
                if v == landmark:
                    continue
                assert store.resistances[i, v] == pytest.approx(
                    solver.effective_resistance(landmark, v), abs=1e-6
                )
