"""ResistanceService.apply_update: end-to-end dynamic-graph serving."""

import numpy as np
import pytest

from repro.graph import EdgeDelta, barabasi_albert_graph, with_random_weights
from repro.service import ResistanceService, ServiceConfig, UpdateReport
from repro.service.artifacts import load_delta_log


@pytest.fixture()
def graph():
    return barabasi_albert_graph(200, 3, rng=21)


def _peripheral_insert(graph):
    """An insert between two low-degree, non-adjacent nodes (localized delta)."""
    order = np.argsort(graph.degrees)
    for i in range(len(order)):
        for j in range(i + 1, min(i + 20, len(order))):
            u, v = int(order[i]), int(order[j])
            if not graph.has_edge(u, v):
                return EdgeDelta(inserts=[(min(u, v), max(u, v))])
    raise AssertionError("no non-adjacent low-degree pair found")


class TestApplyUpdate:
    def test_report_shape_and_epoch(self, graph):
        service = ResistanceService(graph, rng=1)
        delta = _peripheral_insert(graph)
        report = service.apply_update(delta)
        assert isinstance(report, UpdateReport)
        assert report.epoch == service.epoch == 1
        assert report.changes == 1
        assert report.sketch_action == "marked-stale"
        assert service.stats.updates == 1
        assert "updates" in service.stats.summary()

    def test_cache_entries_far_from_delta_survive(self, graph):
        from repro.graph import expand_neighborhood

        service = ResistanceService(graph, rng=1)
        delta = _peripheral_insert(graph)
        post = delta.apply_to(graph)
        region = set(
            int(v)
            for g in (graph, post)
            for v in expand_neighborhood(g, delta.touched_nodes, 1)
        )
        outside = [v for v in range(graph.num_nodes) if v not in region]
        pairs = [(outside[0], outside[1]), (outside[2], outside[3])]
        for s, t in pairs:
            service.query(s, t, 0.5)
        report = service.apply_update(delta)
        assert report.invalidated_cache_entries == 0
        assert report.surviving_cache_entries >= len(pairs)
        for s, t in pairs:  # untouched pairs still answer from the cache
            assert service.cache.get(s, t, 0.5) is not None

    def test_cache_entries_on_touched_nodes_are_dropped(self, graph):
        config = ServiceConfig(use_sketch=False, invalidation_hops=0)
        service = ResistanceService(graph, config=config, rng=1)
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        u, v = edges[17]
        service.query(u, 100 if u != 100 else 101, 0.5)
        assert len(service.cache) == 1
        report = service.apply_update(EdgeDelta(removals=[(u, v)]))
        assert report.invalidated_cache_entries == 1
        assert len(service.cache) == 0

    def test_invalidation_hops_widen_the_region(self, graph):
        delta = _peripheral_insert(graph)
        dropped = {}
        for hops in (0, 1, 2):
            config = ServiceConfig(use_sketch=False, invalidation_hops=hops)
            service = ResistanceService(graph, config=config, rng=1)
            rng = np.random.default_rng(3)
            for _ in range(40):
                s, t = map(int, rng.integers(0, graph.num_nodes, 2))
                if s != t:
                    service.cache.put(s, t, 0.5, 1.0)
            dropped[hops] = service.apply_update(delta).invalidated_cache_entries
        assert dropped[0] <= dropped[1] <= dropped[2]

    def test_queries_after_update_match_cold_service(self, graph):
        service = ResistanceService(graph, rng=9)
        delta = _peripheral_insert(graph)
        service.apply_update(delta)
        cold = ResistanceService(delta.apply_to(graph), rng=9)
        a = service.query(4, 150, 0.4)
        b = cold.query(4, 150, 0.4)
        assert float(a.value).hex() == float(b.value).hex()

    def test_pending_coalesced_requests_flush_before_update(self, graph):
        service = ResistanceService(graph, rng=2)
        pending = service.submit(3, 180, 0.5)
        # an engine-bound request sits in the coalescer buffer
        if not pending.done:
            service.apply_update(_peripheral_insert(graph))
            assert pending.done  # flushed against the pre-delta epoch

    def test_store_tracks_log_and_lineage(self, graph):
        service = ResistanceService(graph, rng=1)
        d1 = _peripheral_insert(graph)
        service.apply_update(d1)
        assert service.store.epoch == 1
        assert service.store.delta_log == (d1,)
        assert service.engine.lineage == service.store.lineage


class TestSketchRefreshPolicies:
    def test_eager_rebuilds_during_update(self, graph):
        config = ServiceConfig(sketch_refresh="eager")
        service = ResistanceService(graph, config=config, rng=1)
        old_sketch = service.sketch
        report = service.apply_update(_peripheral_insert(graph))
        assert report.sketch_action == "rebuilt"
        assert service.sketch is not old_sketch
        assert not service.sketch.stale
        assert service.stats.sketch_rebuilds == 1

    def test_on_next_read_rebuilds_lazily(self, graph):
        config = ServiceConfig(sketch_refresh="on-next-read")
        service = ResistanceService(graph, config=config, rng=1)
        old_sketch = service.sketch
        report = service.apply_update(_peripheral_insert(graph))
        assert report.sketch_action == "marked-stale"
        assert service.sketch is old_sketch and service.sketch.stale
        assert service.stats.sketch_rebuilds == 0
        service.query(0, 1, 1.0)  # loose ε: the rebuilt sketch can answer
        assert service.stats.sketch_rebuilds == 1
        assert not service.sketch.stale

    def test_budgeted_defers_until_enough_updates(self, graph):
        config = ServiceConfig(sketch_refresh="budgeted", sketch_refresh_budget=2)
        service = ResistanceService(graph, config=config, rng=1)
        delta = _peripheral_insert(graph)
        service.apply_update(delta)
        service.query(0, 1, 1.0)
        # one update < budget: the sketch layer is bypassed, not rebuilt
        assert service.stats.sketch_rebuilds == 0
        assert service.sketch.stale
        service.apply_update(EdgeDelta(removals=[delta.inserts[0][:2]]))
        service.query(0, 1, 1.0)
        assert service.stats.sketch_rebuilds == 1
        assert not service.sketch.stale

    def test_stale_sketch_never_answers(self, graph):
        config = ServiceConfig(sketch_refresh="budgeted", sketch_refresh_budget=99)
        service = ResistanceService(graph, config=config, rng=1)
        service.apply_update(_peripheral_insert(graph))
        result = service.query(0, 1, 10.0)  # ε the sketch would trivially meet
        assert result.method != "sketch"


class TestUpdateArtifacts:
    def test_save_after_update_records_log_and_replays(self, tmp_path, graph):
        service = ResistanceService(graph, rng=5)
        service.warm_up()
        delta = _peripheral_insert(graph)
        service.apply_update(delta)
        service.save_artifacts(tmp_path)
        assert load_delta_log(tmp_path) == [delta]
        # restart with only the BASE graph: the log replays to the saved epoch
        warm = ResistanceService(graph, rng=5, artifact_dir=tmp_path)
        assert warm.warm_started
        assert warm.epoch == 1
        assert warm.graph == delta.apply_to(graph)
        a = warm.query(2, 120, 0.4)
        cold = ResistanceService(delta.apply_to(graph), rng=5)
        b = cold.query(2, 120, 0.4)
        assert float(a.value).hex() == float(b.value).hex()

    def test_save_refreshes_stale_sketch(self, tmp_path, graph):
        service = ResistanceService(graph, rng=5)
        service.apply_update(_peripheral_insert(graph))
        assert service.sketch.stale
        service.save_artifacts(tmp_path)
        assert not service.sketch.stale

    def test_weighted_update_round_trip(self, tmp_path):
        graph = with_random_weights(barabasi_albert_graph(120, 3, rng=2), rng=3)
        service = ResistanceService(graph, rng=4)
        edges = [tuple(map(int, e)) for e in graph.edge_array()]
        delta = EdgeDelta(reweights=[edges[11] + (0.5,)])
        service.apply_update(delta)
        service.save_artifacts(tmp_path)
        warm = ResistanceService(graph, rng=4, artifact_dir=tmp_path)
        assert warm.warm_started and warm.epoch == 1
        assert warm.graph.edge_weight(*edges[11]) == 0.5


class TestUpdateCycleRegressions:
    """Regressions from review: repeated update→save cycles and atomicity."""

    def test_repeated_update_save_cycles_keep_base_replayable(self, tmp_path, graph):
        """Each warm reload must extend — not truncate — the persisted delta log."""
        deltas = []
        for round_number in range(3):
            service = ResistanceService(graph, rng=5, artifact_dir=tmp_path)
            if round_number:
                assert service.warm_started and service.epoch == round_number
            delta = _peripheral_insert(service.graph)
            deltas.append(delta)
            service.apply_update(delta)
            service.save_artifacts(tmp_path)
        assert load_delta_log(tmp_path) == deltas
        # the ORIGINAL base graph still replays the whole chain warm
        final = ResistanceService(graph, rng=5, artifact_dir=tmp_path)
        assert final.warm_started and final.epoch == 3
        current = graph
        for delta in deltas:
            current = delta.apply_to(current)
        assert final.graph == current

    def test_rejected_delta_leaves_no_trace(self, graph):
        """A delta the context refuses must not advance the store or the log."""
        from repro.exceptions import GraphStructureError

        service = ResistanceService(graph, rng=1)
        lineage_before = service.store.lineage
        bad = EdgeDelta(inserts=[tuple(map(int, graph.edge_array()[0]))])  # exists
        with pytest.raises(GraphStructureError):
            service.apply_update(bad)
        assert service.epoch == 0
        assert service.store.epoch == 0
        assert service.store.delta_log == ()
        assert service.store.lineage == lineage_before
        assert service.stats.updates == 0
        # a valid follow-up update does NOT smuggle in the failed delta
        good = _peripheral_insert(graph)
        service.apply_update(good)
        assert service.graph == good.apply_to(graph)

    def test_rejected_disconnecting_delta_keeps_store_in_sync(self):
        from repro.exceptions import GraphStructureError
        from repro.graph import from_edges

        # triangle + pendant: removing (2, 3) would isolate node 3
        base = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        service = ResistanceService(base, config=ServiceConfig(use_sketch=False), rng=1)
        with pytest.raises(GraphStructureError):
            service.apply_update(EdgeDelta(removals=[(2, 3)]))
        assert service.store.epoch == service.epoch == 0
        assert service.store.graph is service.graph is base
        # the served graph still answers for the pendant edge
        assert service.exact(2, 3) == pytest.approx(1.0, abs=1e-6)
