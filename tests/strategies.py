"""Shared hypothesis strategies for the test-suite.

One place for the random-graph constructions that used to be duplicated (with
small variations) across ``tests/sampling/test_fused_walks.py``,
``tests/graph/test_io.py`` and the property suites.  Every strategy takes a
``weighted`` switch:

* ``weighted=False`` (default) — classic unweighted graphs;
* ``weighted=True``  — the same topology with i.i.d. uniform edge weights
  drawn from a derived seed;
* ``weighted=None``  — hypothesis draws the flag, so one test exercises both
  pipelines.

All strategies derive their randomness from drawn integer seeds, so failures
shrink and replay deterministically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph.builders import from_edges, with_random_weights
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
)

__all__ = [
    "arbitrary_graphs",
    "connected_graphs",
    "walkable_graphs",
    "graph_with_pair",
    "estimation_cases",
    "maybe_weighted",
]


def maybe_weighted(draw, graph, weighted):
    """Apply the three-state ``weighted`` switch to a built graph."""
    if weighted is None:
        weighted = draw(st.booleans())
    if not weighted:
        return graph
    seed = draw(st.integers(0, 2**31 - 1))
    return with_random_weights(graph, low=0.5, high=2.5, rng=seed)


def _spanning_edge_set(rng: np.random.Generator, n: int) -> set[tuple[int, int]]:
    """A random spanning path as a canonical edge set (guarantees connectivity)."""
    order = rng.permutation(n)
    return {
        (min(int(a), int(b)), max(int(a), int(b)))
        for a, b in zip(order[:-1], order[1:])
    }


@st.composite
def arbitrary_graphs(draw, min_nodes=2, max_nodes=30, weighted=False):
    """Random graphs (not necessarily connected) with at least one edge.

    Node ids are compacted so every node is an endpoint of some edge — the
    shape edge-list IO can represent exactly (used by the IO round-trip
    suite).
    """
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    num_edges = draw(st.integers(1, min(3 * n, n * (n - 1) // 2)))
    edges = set()
    while len(edges) < num_edges:
        u, v = map(int, rng.integers(0, n, size=2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    used = sorted({v for edge in edges for v in edge})
    remap = {old: new for new, old in enumerate(used)}
    graph = from_edges(
        sorted((remap[u], remap[v]) for u, v in edges), num_nodes=len(used)
    )
    return maybe_weighted(draw, graph, weighted)


@st.composite
def connected_graphs(
    draw, min_nodes=4, max_nodes=24, weighted=False, families=("spanning", "ba", "er", "grid")
):
    """Random *connected* graphs drawn from several families.

    ``spanning`` is the historical construction (random spanning path plus
    random extra edges); ``ba``/``er``/``grid`` exercise preferential
    attachment, Erdős–Rényi and lattice topologies.
    """
    family = draw(st.sampled_from(families))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if family == "grid":
        # keep rows*cols inside [min_nodes, max_nodes]
        rows = draw(st.integers(2, max(2, int(max_nodes**0.5))))
        min_cols = max(2, -(-max(min_nodes, 4) // rows))
        cols = draw(st.integers(min_cols, max(min_cols, max_nodes // rows)))
        graph = grid_graph(rows, cols)
    elif family == "ba":
        n = draw(st.integers(max(min_nodes, 3), max_nodes))
        attach = draw(st.integers(1, min(3, n - 1)))
        graph = barabasi_albert_graph(n, attach, rng=rng)
    elif family == "er":
        n = draw(st.integers(max(min_nodes, 2), max_nodes))
        extra = draw(st.integers(0, min(2 * n, n * (n - 1) // 2 - (n - 1))))
        graph = erdos_renyi_graph(n, n - 1 + extra, rng=rng, connect=True)
    else:  # spanning
        n = draw(st.integers(min_nodes, max_nodes))
        edges = _spanning_edge_set(rng, n)
        max_extra = n * (n - 1) // 2 - (n - 1)
        extra = draw(st.integers(0, min(max_extra, 3 * n)))
        while len(edges) < (n - 1) + extra:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((min(int(u), int(v)), max(int(u), int(v))))
        graph = from_edges(sorted(edges), num_nodes=n)
    return maybe_weighted(draw, graph, weighted)


@st.composite
def walkable_graphs(draw, min_nodes=6, max_nodes=30, weighted=False):
    """Connected, non-bipartite random graphs (a triangle is always included).

    Kept reasonably dense: sparse near-path graphs have a tiny spectral gap,
    which makes the (correct) walk budgets of the Monte Carlo estimators
    astronomically large and the tests needlessly slow.
    """
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    edges = _spanning_edge_set(rng, n)
    # force a triangle on the first three nodes of the spanning order
    a, b, c = (int(order[0]), int(order[1]), int(order[2]))
    for u, v in ((a, b), (b, c), (a, c)):
        edges.add((min(u, v), max(u, v)))
    extra = draw(st.integers(n, 3 * n))
    target = min(n - 1 + 3 + extra, n * (n - 1) // 2)
    while len(edges) < target:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    graph = from_edges(sorted(edges), num_nodes=n)
    return maybe_weighted(draw, graph, weighted)


@st.composite
def graph_with_pair(draw, weighted=False, **kwargs):
    """A connected graph plus an arbitrary (possibly equal) node pair."""
    graph = draw(connected_graphs(weighted=weighted, **kwargs))
    s = draw(st.integers(0, graph.num_nodes - 1))
    t = draw(st.integers(0, graph.num_nodes - 1))
    return graph, s, t


@st.composite
def estimation_cases(draw, weighted=False, **kwargs):
    """A walkable graph, a node pair, an ε and a seed — one estimator test case."""
    graph = draw(walkable_graphs(weighted=weighted, **kwargs))
    s = draw(st.integers(0, graph.num_nodes - 1))
    t = draw(st.integers(0, graph.num_nodes - 1))
    epsilon = draw(st.sampled_from([0.5, 0.25]))
    seed = draw(st.integers(0, 2**31 - 1))
    return graph, s, t, epsilon, seed
