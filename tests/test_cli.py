"""Tests for the repro-er command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.datasets import load_dataset
from repro.graph.io import write_edge_list


@pytest.fixture()
def edge_list_file(tmp_path):
    graph = load_dataset("facebook-tiny")
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--dataset", "facebook-tiny", "0,1"])
        assert args.method == "geer"
        assert args.epsilon == 0.1


class TestDatasetsCommand:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "facebook-syn" in output
        assert "dblp-syn" in output


class TestQueryCommand:
    def test_query_on_registry_dataset(self, capsys):
        exit_code = main(
            ["query", "--dataset", "facebook-tiny", "--epsilon", "0.3", "--exact", "0,5", "3,17"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "effective resistance queries" in output
        assert "abs error" in output

    def test_query_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(
            ["query", "--edge-list", edge_list_file, "--method", "smm", "1,2"]
        )
        assert exit_code == 0
        assert "smm" in capsys.readouterr().out

    def test_malformed_pair(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "facebook-tiny", "notapair"])

    def test_requires_exactly_one_graph_source(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["query", "0,1"])
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--dataset",
                    "facebook-tiny",
                    "--edge-list",
                    edge_list_file,
                    "0,1",
                ]
            )


class TestMethodsCommand:
    def test_lists_full_registry(self, capsys):
        from repro.core.registry import available_methods

        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in available_methods():
            assert name in output

    def test_query_method_list_prints_registry(self, capsys):
        assert main(["query", "--method", "list"]) == 0
        output = capsys.readouterr().out
        assert "registered query methods" in output
        assert "geer" in output and "hay" in output

    def test_query_with_registered_baseline(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "smm-peng",
                "--epsilon",
                "0.4",
                "1,2",
            ]
        )
        assert exit_code == 0
        assert "smm-peng" in capsys.readouterr().out

    def test_query_batch_flag(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "geer",
                "--epsilon",
                "0.4",
                "--batch",
                "0,5",
                "3,17",
                "9,4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "degree buckets" in output

    def test_query_batch_prints_session_stats(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--epsilon",
                "0.4",
                "--batch",
                "0,5",
                "3,17",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "session stats" in output
        assert "walk_steps" in output and "spmv_operations" in output

    def test_query_batch_workers_flag(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "geer",
                "--epsilon",
                "0.4",
                "--batch",
                "--workers",
                "2",
                "0,5",
                "3,17",
                "9,4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "workers=2" in output

    def test_query_without_pairs_errors(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "facebook-tiny"])

    def test_edge_method_on_non_edge_exits_cleanly(self):
        # (0, 1) is unlikely to matter: pick a pair that is certainly not an
        # edge by construction of the error path — SystemExit either way.
        from repro.experiments.datasets import load_dataset

        graph = load_dataset("facebook-tiny")
        non_edge = None
        for u in range(graph.num_nodes):
            for v in range(u + 1, graph.num_nodes):
                if not graph.has_edge(u, v):
                    non_edge = f"{u},{v}"
                    break
            if non_edge:
                break
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--dataset",
                    "facebook-tiny",
                    "--method",
                    "mc2",
                    "--batch",
                    non_edge,
                ]
            )


class TestWarmCommand:
    def test_warm_writes_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "warm",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--landmarks",
                "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lambda=" in output
        assert "4 landmarks" in output
        assert (artifacts / "manifest.json").is_file()
        assert (artifacts / "sketch.npz").is_file()

    def test_warm_no_sketch(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "warm",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--no-sketch",
            ]
        )
        assert exit_code == 0
        assert (artifacts / "manifest.json").is_file()
        assert not (artifacts / "sketch.npz").exists()


class TestServeCommand:
    def test_serve_repeats_hit_the_cache(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--epsilon",
                "0.3",
                "--repeat",
                "2",
                "0,5",
                "3,17",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cold start" in output
        assert "cache" in output
        assert "service stats" in output and "session stats" in output

    def test_serve_warm_start_from_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)]) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "0,5",
            ]
        )
        assert exit_code == 0
        assert "warm (artifacts) start" in capsys.readouterr().out

    def test_serve_cold_run_saves_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "0,5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "next start will be warm" in output
        assert (artifacts / "manifest.json").is_file()

    def test_serve_without_pairs_errors(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "facebook-tiny"])

    def test_serve_stale_artifacts_exit_cleanly(self, tmp_path, edge_list_file):
        # Artifacts built for facebook-tiny must be rejected for another graph
        # with a CLI error, not a traceback.
        artifacts = tmp_path / "artifacts"
        assert main(["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)]) == 0
        from repro.experiments.datasets import load_dataset
        from repro.graph.io import write_edge_list

        graph = load_dataset("facebook-tiny")
        other = tmp_path / "other.txt"
        write_edge_list(graph.remove_edges([next(graph.edges())]), other)
        with pytest.raises(SystemExit, match="different graph"):
            main(["serve", "--edge-list", str(other), "--artifacts", str(artifacts), "0,5"])


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--dataset",
                "facebook-tiny",
                "--epsilons",
                "0.5",
                "--num-queries",
                "3",
                "--methods",
                "geer",
                "smm",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "geer" in output and "smm" in output
