"""Tests for the repro-er command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.datasets import load_dataset
from repro.graph.io import write_edge_list


@pytest.fixture()
def edge_list_file(tmp_path):
    graph = load_dataset("facebook-tiny")
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--dataset", "facebook-tiny", "0,1"])
        assert args.method == "geer"
        assert args.epsilon == 0.1


class TestDatasetsCommand:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "facebook-syn" in output
        assert "dblp-syn" in output


class TestQueryCommand:
    def test_query_on_registry_dataset(self, capsys):
        exit_code = main(
            ["query", "--dataset", "facebook-tiny", "--epsilon", "0.3", "--exact", "0,5", "3,17"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "effective resistance queries" in output
        assert "abs error" in output

    def test_query_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(
            ["query", "--edge-list", edge_list_file, "--method", "smm", "1,2"]
        )
        assert exit_code == 0
        assert "smm" in capsys.readouterr().out

    def test_malformed_pair(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "facebook-tiny", "notapair"])

    def test_requires_exactly_one_graph_source(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(["query", "0,1"])
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--dataset",
                    "facebook-tiny",
                    "--edge-list",
                    edge_list_file,
                    "0,1",
                ]
            )


class TestMethodsCommand:
    def test_lists_full_registry(self, capsys):
        from repro.core.registry import available_methods

        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in available_methods():
            assert name in output

    def test_query_method_list_prints_registry(self, capsys):
        assert main(["query", "--method", "list"]) == 0
        output = capsys.readouterr().out
        assert "registered query methods" in output
        assert "geer" in output and "hay" in output

    def test_query_with_registered_baseline(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "smm-peng",
                "--epsilon",
                "0.4",
                "1,2",
            ]
        )
        assert exit_code == 0
        assert "smm-peng" in capsys.readouterr().out

    def test_query_batch_flag(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "geer",
                "--epsilon",
                "0.4",
                "--batch",
                "0,5",
                "3,17",
                "9,4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "degree buckets" in output

    def test_query_batch_prints_session_stats(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--epsilon",
                "0.4",
                "--batch",
                "0,5",
                "3,17",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "session stats" in output
        assert "walk_steps" in output and "spmv_operations" in output

    def test_query_batch_workers_flag(self, capsys):
        exit_code = main(
            [
                "query",
                "--dataset",
                "facebook-tiny",
                "--method",
                "geer",
                "--epsilon",
                "0.4",
                "--batch",
                "--workers",
                "2",
                "0,5",
                "3,17",
                "9,4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "workers=2" in output

    def test_query_without_pairs_errors(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "facebook-tiny"])

    def test_edge_method_on_non_edge_exits_cleanly(self):
        # (0, 1) is unlikely to matter: pick a pair that is certainly not an
        # edge by construction of the error path — SystemExit either way.
        from repro.experiments.datasets import load_dataset

        graph = load_dataset("facebook-tiny")
        non_edge = None
        for u in range(graph.num_nodes):
            for v in range(u + 1, graph.num_nodes):
                if not graph.has_edge(u, v):
                    non_edge = f"{u},{v}"
                    break
            if non_edge:
                break
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--dataset",
                    "facebook-tiny",
                    "--method",
                    "mc2",
                    "--batch",
                    non_edge,
                ]
            )


class TestWarmCommand:
    def test_warm_writes_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "warm",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--landmarks",
                "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lambda=" in output
        assert "4 landmarks" in output
        assert (artifacts / "manifest.json").is_file()
        assert (artifacts / "sketch.npz").is_file()

    def test_warm_no_sketch(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "warm",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--no-sketch",
            ]
        )
        assert exit_code == 0
        assert (artifacts / "manifest.json").is_file()
        assert not (artifacts / "sketch.npz").exists()


class TestServeCommand:
    def test_serve_repeats_hit_the_cache(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--epsilon",
                "0.3",
                "--repeat",
                "2",
                "0,5",
                "3,17",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cold start" in output
        assert "cache" in output
        assert "service stats" in output and "session stats" in output

    def test_serve_warm_start_from_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)]) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "0,5",
            ]
        )
        assert exit_code == 0
        assert "warm (artifacts) start" in capsys.readouterr().out

    def test_serve_cold_run_saves_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        exit_code = main(
            [
                "serve",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "0,5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "next start will be warm" in output
        assert (artifacts / "manifest.json").is_file()

    def test_serve_without_pairs_errors(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "facebook-tiny"])

    def test_serve_stale_artifacts_exit_cleanly(self, tmp_path, edge_list_file):
        # Artifacts built for facebook-tiny must be rejected for another graph
        # with a CLI error, not a traceback.
        artifacts = tmp_path / "artifacts"
        assert main(["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)]) == 0
        from repro.experiments.datasets import load_dataset
        from repro.graph.io import write_edge_list

        graph = load_dataset("facebook-tiny")
        other = tmp_path / "other.txt"
        write_edge_list(graph.remove_edges([next(graph.edges())]), other)
        with pytest.raises(SystemExit, match="different graph"):
            main(["serve", "--edge-list", str(other), "--artifacts", str(artifacts), "0,5"])


class TestSweepCommand:
    def test_small_sweep(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--dataset",
                "facebook-tiny",
                "--epsilons",
                "0.5",
                "--num-queries",
                "3",
                "--methods",
                "geer",
                "smm",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "geer" in output and "smm" in output


class TestDescribeGraphHelper:
    """The shared loader/summary helper behind query / warm / serve / update."""

    def test_describe_unweighted(self):
        from repro.cli import describe_graph
        from repro.graph import barabasi_albert_graph

        graph = barabasi_albert_graph(50, 2, rng=1)
        line = describe_graph(graph, "ba-50")
        assert line.startswith("graph ba-50: n=50, m=")
        assert "weighted" not in line

    def test_describe_weighted(self):
        from repro.cli import describe_graph
        from repro.graph import barabasi_albert_graph, with_random_weights

        graph = with_random_weights(barabasi_albert_graph(50, 2, rng=1), rng=2)
        line = describe_graph(graph, "ba-50w")
        assert f"weighted (W={graph.total_weight:.2f})" in line

    def test_load_graph_announce_prints_once(self, edge_list_file, capsys):
        import argparse

        from repro.cli import _load_graph, describe_graph

        args = argparse.Namespace(dataset=None, edge_list=edge_list_file)
        graph, label = _load_graph(args, announce=True)
        out = capsys.readouterr().out
        assert out.strip() == describe_graph(graph, label)
        _load_graph(args)  # announce defaults off: silent
        assert capsys.readouterr().out == ""

    def test_every_graph_subcommand_prints_the_shared_banner(self, tmp_path, capsys):
        artifacts = tmp_path / "art"
        for argv in (
            ["query", "--dataset", "facebook-tiny", "--method", "smm", "0,1"],
            ["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)],
            ["serve", "--dataset", "facebook-tiny", "--artifacts", str(artifacts), "0,1"],
        ):
            assert main(argv) == 0
            assert "graph facebook-tiny: n=" in capsys.readouterr().out


class TestParseDeltaFile:
    def test_parses_all_op_kinds(self):
        from repro.cli import parse_delta_file

        delta = parse_delta_file(
            """
            # comment line
            add 1 2
            add 3 4 2.5
            remove 5 6
            reweight 7 8 0.5   # trailing comment
            """
        )
        assert delta.inserts == ((1, 2, None), (3, 4, 2.5))
        assert delta.removals == ((5, 6),)
        assert delta.reweights == ((7, 8, 0.5),)

    def test_rejects_malformed_lines(self):
        from repro.cli import parse_delta_file

        with pytest.raises(SystemExit, match="line 1"):
            parse_delta_file("frobnicate 1 2")
        with pytest.raises(SystemExit, match="line 1"):
            parse_delta_file("add 1")


class TestUpdateCommand:
    def test_update_warm_artifacts(self, tmp_path, capsys):
        artifacts = tmp_path / "art"
        assert main(
            ["warm", "--dataset", "facebook-tiny", "--artifacts", str(artifacts)]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "update",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--add",
                "0,37",
                "--remove",
                "0,1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "warm (artifacts) start" in output
        assert "applied update" in output
        assert "epoch 1" in output
        # the delta log was persisted for replay loading
        from repro.service.artifacts import load_delta_log

        log = load_delta_log(artifacts)
        assert len(log) == 1
        assert log[0].inserts == ((0, 37, None),)
        assert log[0].removals == ((0, 1),)
        # serving from the BASE graph now replays the log and starts warm
        assert main(
            ["serve", "--dataset", "facebook-tiny", "--artifacts", str(artifacts), "2,9"]
        ) == 0
        assert "warm (artifacts) start" in capsys.readouterr().out

    def test_update_delta_file(self, tmp_path, capsys):
        artifacts = tmp_path / "art"
        delta_file = tmp_path / "ops.txt"
        delta_file.write_text("add 0 37\nremove 0 1\n")
        exit_code = main(
            [
                "update",
                "--dataset",
                "facebook-tiny",
                "--artifacts",
                str(artifacts),
                "--delta-file",
                str(delta_file),
            ]
        )
        assert exit_code == 0
        assert "applied update" in capsys.readouterr().out

    def test_update_without_operations_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="edge operation"):
            main(
                [
                    "update",
                    "--dataset",
                    "facebook-tiny",
                    "--artifacts",
                    str(tmp_path / "art"),
                ]
            )

    def test_update_conflicting_delta_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="non-existent"):
            main(
                [
                    "update",
                    "--dataset",
                    "facebook-tiny",
                    "--artifacts",
                    str(tmp_path / "art"),
                    "--remove",
                    "0,37",  # not an edge of facebook-tiny
                ]
            )
