"""Cross-method conformance suite.

Every method in the registry, on small **weighted and unweighted** graphs,
must agree with the exact weighted-Laplacian pseudo-inverse resistance within
its ε budget.  One table (``METHOD_BUDGETS``) drives the whole matrix instead
of per-method spot checks scattered across the suite — this is the safety net
that let the weighted refactor touch every estimator at once.

Design notes
------------
* Budgets are **deterministic** (explicit walk/sample caps, no wall-clock
  cuts) and seeds are pinned, so a failure is reproducible and a numerics
  change fails loudly rather than flaking.
* The tolerance is expressed as a multiple of ε.  Exact/solver methods get a
  tiny absolute tolerance; SMM inherits the ε/2 truncation guarantee; the
  adaptive methods get ε; the capped Monte Carlo baselines get a looser
  multiple because their faithful budgets (which the ε guarantee assumes) are
  far beyond laptop scale.
* Edge methods (mc2, hay) are only ever asked edge queries; pair methods see
  both adjacent and non-adjacent pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from repro.baselines.exact import ExactEffectiveResistance
from repro.core.registry import (
    QueryBudget,
    QueryContext,
    available_methods,
    resolve_method,
)
from repro.graph.builders import with_random_weights
from repro.graph.generators import barabasi_albert_graph, watts_strogatz_graph

EPSILON = 0.35
SEED = 7_2023


def _graphs():
    ba = barabasi_albert_graph(40, 3, rng=8)
    ws = watts_strogatz_graph(36, 4, 0.2, rng=9)
    return {
        "ba-unweighted": ba,
        "ba-weighted": with_random_weights(ba, low=0.5, high=2.5, rng=18),
        "ws-unweighted": ws,
        "ws-weighted": with_random_weights(ws, low=0.25, high=4.0, rng=19),
    }


GRAPHS = _graphs()
ORACLES = {name: ExactEffectiveResistance(g) for name, g in GRAPHS.items()}


@dataclass(frozen=True)
class ConformanceBudget:
    """How far a method's answers may sit from the exact oracle."""

    #: allowed |estimate - exact| as a multiple of ε (None = absolute only)
    epsilon_factor: Optional[float]
    #: flat absolute slack added on top (covers the δ failure probability and
    #: the reduced laptop budgets of the capped baselines)
    absolute: float = 0.0
    #: edge queries only?
    edge_only: bool = False

    def tolerance(self) -> float:
        factor = 0.0 if self.epsilon_factor is None else self.epsilon_factor
        return factor * EPSILON + self.absolute


METHOD_BUDGETS: dict[str, ConformanceBudget] = {
    "exact": ConformanceBudget(epsilon_factor=None, absolute=1e-9),
    "ground-truth": ConformanceBudget(epsilon_factor=None, absolute=1e-7),
    "smm": ConformanceBudget(epsilon_factor=0.5, absolute=1e-9),
    "smm-peng": ConformanceBudget(epsilon_factor=0.5, absolute=1e-9),
    "geer": ConformanceBudget(epsilon_factor=1.0, absolute=0.05),
    "amc": ConformanceBudget(epsilon_factor=1.0, absolute=0.05),
    # RP's guarantee is multiplicative (1 ± ε); resistances here are <= ~2,
    # so 2ε plus slack for the reduced JL constant covers it.
    "rp": ConformanceBudget(epsilon_factor=2.0, absolute=0.1),
    "tp": ConformanceBudget(epsilon_factor=1.0, absolute=0.1),
    "tpc": ConformanceBudget(epsilon_factor=1.0, absolute=0.15),
    "mc": ConformanceBudget(epsilon_factor=1.0, absolute=0.15),
    "mc2": ConformanceBudget(epsilon_factor=1.0, absolute=0.15, edge_only=True),
    "hay": ConformanceBudget(epsilon_factor=1.0, absolute=0.15, edge_only=True),
}

#: Per-method query kwargs pinning deterministic sample budgets.  TP/TPC's
#: faithful per-length budgets are hours-per-query by design (the paper's
#: point); a fixed walks-per-length keeps each cell fast, deterministic and
#: still well inside the table's tolerance.
METHOD_KWARGS: dict[str, dict] = {
    "tp": {"walks_per_length": 4000},
    "tpc": {"walks_per_length": 6000},
}


def _conformance_query_budget() -> QueryBudget:
    """Deterministic laptop-scale caps: no wall-clock cuts, pinned sample sizes."""
    return QueryBudget(
        max_total_steps=4_000_000,
        mc_max_walks=1500,
        mc2_max_walks=4000,
        hay_max_samples=300,
        tp_budget_scale=0.05,
        tpc_budget_scale=0.02,
        baseline_max_seconds=None,
        rp_jl_constant=4.0,
        rp_max_dimension=2000,
        exact_max_nodes=4000,
    )


def _query_pairs(graph, *, edge_only: bool) -> list[tuple[int, int]]:
    edges = graph.edge_array()
    edge_pairs = [tuple(map(int, edges[i])) for i in (0, len(edges) // 2)]
    if edge_only:
        return edge_pairs
    # add one non-adjacent pair for the general methods
    n = graph.num_nodes
    for s in range(n):
        for t in range(s + 2, n):
            if not graph.has_edge(s, t):
                return edge_pairs + [(s, t)]
    return edge_pairs


def test_every_registered_method_has_a_budget_row():
    """New methods must opt into the conformance matrix explicitly."""
    assert sorted(METHOD_BUDGETS) == sorted(available_methods())


@pytest.mark.conformance
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("method", sorted(METHOD_BUDGETS))
def test_method_matches_exact_within_budget(graph_name, method):
    graph = GRAPHS[graph_name]
    oracle = ORACLES[graph_name]
    budget_row = METHOD_BUDGETS[method]
    spec = resolve_method(method)
    context = QueryContext(graph, rng=SEED, budget=_conformance_query_budget())
    tolerance = budget_row.tolerance()
    kwargs = METHOD_KWARGS.get(method, {})
    for s, t in _query_pairs(graph, edge_only=budget_row.edge_only):
        result = spec(context, s, t, EPSILON, **kwargs)
        exact = oracle.query(s, t)
        assert result.value == pytest.approx(exact, abs=tolerance), (
            f"{method} on {graph_name}: r({s},{t}) = {result.value:.4f} "
            f"vs exact {exact:.4f} (tolerance {tolerance:.3f})"
        )


@pytest.mark.conformance
@pytest.mark.parametrize("graph_name", ["ba-weighted", "ws-weighted"])
def test_weighted_oracle_consistency(graph_name):
    """The conformance reference itself: pinv, CG solver and SMM agree."""
    from repro.baselines.ground_truth import GroundTruthOracle
    from repro.core.smm import smm_estimate

    graph = GRAPHS[graph_name]
    oracle = ORACLES[graph_name]
    gt = GroundTruthOracle(graph)
    s, t = map(int, graph.edge_array()[0])
    assert gt.query(s, t) == pytest.approx(oracle.query(s, t), abs=1e-7)
    assert smm_estimate(graph, s, t, 2000).value == pytest.approx(
        oracle.query(s, t), abs=1e-6
    )


@pytest.mark.slow
@pytest.mark.conformance
@pytest.mark.parametrize("graph_name", ["ba-weighted", "ba-unweighted"])
@pytest.mark.parametrize("method", ["geer", "amc", "smm", "rp"])
def test_tight_epsilon_conformance(graph_name, method):
    """Extended pass at a tighter ε (full-run CI only): the ε guarantee must
    keep holding as budgets scale up, weighted and unweighted alike."""
    epsilon = 0.1
    graph = GRAPHS[graph_name]
    oracle = ORACLES[graph_name]
    spec = resolve_method(method)
    context = QueryContext(graph, rng=SEED + 1, budget=_conformance_query_budget())
    tolerance = METHOD_BUDGETS[method].epsilon_factor * epsilon + 0.03
    for s, t in _query_pairs(graph, edge_only=False):
        result = spec(context, s, t, epsilon)
        assert result.value == pytest.approx(oracle.query(s, t), abs=tolerance)
