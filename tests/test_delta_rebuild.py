"""The delta ≡ rebuild bit-identity contract (DESIGN.md Contract 4).

For every registered walk method: a context that absorbed an
:class:`~repro.graph.delta.EdgeDelta` returns **hex-exact** estimates (same
seed) to a cold context built from the post-delta graph.  Exercised across
insert / remove / reweight deltas on weighted and unweighted graphs, both as
a hypothesis property (random graphs and deltas, all methods per example) and
as fixed per-kind scenarios.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.engine import QueryEngine
from repro.core.registry import available_methods, resolve_method
from repro.exceptions import GraphStructureError
from repro.graph import EdgeDelta, barabasi_albert_graph, with_random_weights
from repro.graph.properties import require_walkable
from tests.strategies import walkable_graphs

EPSILON = 0.75  # loose ε keeps every Monte-Carlo budget tiny on small graphs


def _walkable(graph) -> bool:
    try:
        require_walkable(graph)
        return True
    except GraphStructureError:
        return False


@st.composite
def delta_cases(draw):
    """A walkable graph, a delta containing the drawn op kind, and a seed."""
    weighted = draw(st.booleans())
    graph = draw(walkable_graphs(min_nodes=8, max_nodes=18, weighted=weighted))
    kind = draw(st.sampled_from(["insert", "remove", "reweight", "mixed"]))
    if kind == "reweight" and not weighted:
        kind = "remove"
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    n = graph.num_nodes
    edges = [tuple(map(int, e)) for e in graph.edge_array()]
    existing = set(edges)

    def draw_inserts(count):
        found, attempts = [], 0
        while len(found) < count and attempts < 60:
            attempts += 1
            u, v = map(int, rng.integers(0, n, size=2))
            key = (min(u, v), max(u, v))
            if u == v or key in existing or key in {f[:2] for f in found}:
                continue
            found.append(key + (1.5,) if weighted else key)
        return found

    def draw_removals(count, forbidden=()):
        pool = [e for e in edges if e not in forbidden]
        ids = rng.choice(len(pool), size=min(count, len(pool)), replace=False)
        return [pool[i] for i in ids]

    inserts, removals, reweights = [], [], []
    if kind in ("insert", "mixed"):
        inserts = draw_inserts(2 if kind == "insert" else 1)
        assume(inserts)
    if kind in ("remove", "mixed"):
        removals = draw_removals(1)
    if kind == "reweight" or (kind == "mixed" and weighted):
        reweights = [
            e + (float(rng.uniform(0.5, 2.5)),) for e in draw_removals(1, removals)
        ]
    delta = EdgeDelta(inserts=inserts, removals=removals, reweights=reweights)
    assume(delta)
    assume(_walkable(delta.apply_to(graph)))
    return graph, delta, seed


def _assert_all_methods_match(graph, delta, seed):
    post_graph = delta.apply_to(graph)
    warm = QueryEngine(graph, rng=seed)
    # warm the artifacts the delta will have to patch
    warm.lambda_max_abs
    warm.context.engine
    warm.context.transition
    warm.context.degrees_float
    warm.apply_update(delta)
    cold = QueryEngine(post_graph, rng=seed)

    pair_rng = np.random.default_rng(seed)
    n = post_graph.num_nodes
    s, t = 0, n - 1
    if s == t:  # pragma: no cover - graphs always have >= 2 nodes
        t = 1
    edge_pair = tuple(map(int, post_graph.edge_array()[0]))
    for name in available_methods():
        spec = resolve_method(name)
        qs, qt = edge_pair if spec.kind == "edge" else (s, t)
        a = warm.query(qs, qt, EPSILON, method=name)
        b = cold.query(qs, qt, EPSILON, method=name)
        assert float(a.value).hex() == float(b.value).hex(), (
            f"method {name}: warm-updated {a.value!r} != cold rebuild {b.value!r}"
        )


@settings(max_examples=8, deadline=None)
@given(case=delta_cases())
def test_delta_equals_rebuild_property(case):
    graph, delta, seed = case
    _assert_all_methods_match(graph, delta, seed)


@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
@pytest.mark.parametrize("kind", ["insert", "remove", "reweight"])
def test_delta_equals_rebuild_fixed(kind, weighted):
    if kind == "reweight" and not weighted:
        pytest.skip("reweights require a weighted graph")
    graph = barabasi_albert_graph(40, 3, rng=9)
    if weighted:
        graph = with_random_weights(graph, rng=10)
    edges = [tuple(map(int, e)) for e in graph.edge_array()]
    if kind == "insert":
        non_edge = next(
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, graph.num_nodes)
            if not graph.has_edge(u, v)
        )
        delta = EdgeDelta(inserts=[non_edge + (2.0,) if weighted else non_edge])
    elif kind == "remove":
        delta = EdgeDelta(removals=[edges[7]])
    else:
        delta = EdgeDelta(reweights=[edges[7] + (0.3,)])
    _assert_all_methods_match(graph, delta, seed=123)


def test_successive_deltas_equal_rebuild():
    """Absorbing several deltas in sequence still matches one cold rebuild."""
    graph = with_random_weights(barabasi_albert_graph(40, 3, rng=4), rng=5)
    edges = [tuple(map(int, e)) for e in graph.edge_array()]
    deltas = [
        EdgeDelta(removals=[edges[3]]),
        EdgeDelta(inserts=[edges[3] + (1.25,)]),
        EdgeDelta(reweights=[edges[9] + (2.0,)]),
    ]
    warm = QueryEngine(graph, rng=77)
    warm.lambda_max_abs
    warm.context.engine
    current = graph
    for delta in deltas:
        warm.apply_update(delta)
        current = delta.apply_to(current)
    assert warm.epoch == len(deltas)
    cold = QueryEngine(current, rng=77)
    for name in ("geer", "amc", "smm", "mc", "tp"):
        a = warm.query(1, 30, EPSILON, method=name)
        b = cold.query(1, 30, EPSILON, method=name)
        assert float(a.value).hex() == float(b.value).hex(), name
