"""Golden regression fixtures: seed-pinned estimates for every method.

``tests/data/golden.json`` (regenerated with ``python tests/regen_golden.py``)
stores the estimate of every registered method on pinned graphs, pairs and
seeds — one unweighted and one weighted graph.  This test replays the same
queries and compares:

* **bit-for-bit** (IEEE-754 hex) for the walk-kernel methods, extending PR 3's
  fused/chunked bit-identity contracts to all 12 methods: any kernel change
  that silently shifts numerics fails loudly here;
* to a tight relative tolerance for the solver-backed methods (CG/ARPACK
  round-off may differ across SciPy builds).

The unweighted entries were generated **before** the weighted refactor landed,
so this file is also the executable proof of the refactor's contract: under
the same seed, unweighted graphs produce bit-identical results to the
pre-weights code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from regen_golden import (
    BITWISE_METHODS,
    SOLVER_METHODS,
    GOLDEN_PATH,
    golden_graphs,
    run_method,
)

pytestmark = pytest.mark.conformance


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.is_file(), (
        f"missing {GOLDEN_PATH}; run `PYTHONPATH=src python tests/regen_golden.py`"
    )
    return json.loads(Path(GOLDEN_PATH).read_text())


@pytest.fixture(scope="module")
def graphs():
    return golden_graphs()


def test_golden_covers_every_method_and_both_weightings(golden):
    from repro.core.registry import available_methods

    assert set(golden["graphs"]) == {"ba60-unweighted", "ba60-weighted"}
    for entry in golden["graphs"].values():
        assert sorted(entry["methods"]) == sorted(available_methods())
    assert sorted(BITWISE_METHODS + SOLVER_METHODS) == sorted(available_methods())


@pytest.mark.parametrize("graph_name", ["ba60-unweighted", "ba60-weighted"])
@pytest.mark.parametrize("method", sorted(BITWISE_METHODS))
def test_walk_methods_are_bit_identical(golden, graphs, graph_name, method):
    stored = golden["graphs"][graph_name]["methods"][method]["hex"]
    replayed = [float(v).hex() for v in run_method(graphs[graph_name], method)]
    assert replayed == stored, (
        f"{method} on {graph_name} drifted from the golden values — a kernel "
        "change shifted numerics. If intentional, regenerate with "
        "`PYTHONPATH=src python tests/regen_golden.py` and say so in the PR."
    )


def _numba_available() -> bool:
    from repro.sampling.kernels import backend_status

    return bool(backend_status()["numba"]["available"])


#: Backend matrix for the golden replay: the explicit numpy backend always
#: runs; the compiled numba backend runs wherever numba is installed (CI's
#: with-numba leg) and is skipped — not silently fallen back — elsewhere,
#: so a green "numba" result always means the compiled kernels produced it.
BACKEND_MATRIX = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not _numba_available(), reason="numba not installed"
        ),
    ),
]


@pytest.mark.parametrize("backend", BACKEND_MATRIX)
@pytest.mark.parametrize("graph_name", ["ba60-unweighted", "ba60-weighted"])
@pytest.mark.parametrize("method", sorted(BITWISE_METHODS))
def test_walk_methods_bit_identical_across_backends(
    golden, graphs, graph_name, method, backend
):
    """Contract 9: every kernel backend reproduces the golden bits exactly."""
    stored = golden["graphs"][graph_name]["methods"][method]["hex"]
    replayed = [
        float(v).hex()
        for v in run_method(graphs[graph_name], method, kernel_backend=backend)
    ]
    assert replayed == stored, (
        f"{method} on {graph_name} drifted from the golden values under the "
        f"{backend!r} kernel backend (compiled ≡ numpy violated)"
    )


@pytest.mark.parametrize("graph_name", ["ba60-unweighted", "ba60-weighted"])
@pytest.mark.parametrize("method", sorted(SOLVER_METHODS))
def test_solver_methods_match_tightly(golden, graphs, graph_name, method):
    stored = golden["graphs"][graph_name]["methods"][method]["values"]
    replayed = run_method(graphs[graph_name], method)
    assert replayed == pytest.approx(stored, rel=1e-9, abs=1e-12)
