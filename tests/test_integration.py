"""End-to-end integration tests: the full query pipeline on registry datasets."""

import numpy as np
import pytest

from repro.core.estimator import EffectiveResistanceEstimator
from repro.experiments.datasets import load_dataset
from repro.experiments.figures import fig2_running_example, run_dataset_sweep
from repro.experiments.harness import build_context, run_method
from repro.experiments.queries import edge_query_set, random_query_set
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("orkut-tiny")


@pytest.fixture(scope="module")
def context(dataset):
    return build_context(dataset, rng=17)


class TestFullPipeline:
    def test_random_query_pipeline_all_methods(self, context):
        """Every random-query method answers the same query set within ε."""
        queries = random_query_set(context.graph, 5, rng=18)
        epsilon = 0.2
        for method in ("geer", "amc", "smm", "tp", "tpc", "rp", "exact"):
            sweep = run_method(context, method, queries, epsilon)
            assert sweep.completed == 5, method
            assert sweep.average_absolute_error <= epsilon, method

    def test_edge_query_pipeline_all_methods(self, context):
        queries = edge_query_set(context.graph, 5, rng=19)
        epsilon = 0.2
        for method in ("geer", "amc", "smm", "mc2", "hay"):
            sweep = run_method(context, method, queries, epsilon)
            assert sweep.completed == 5, method
            assert sweep.average_absolute_error <= epsilon, method

    def test_geer_beats_amc_on_walks_for_small_epsilon(self, dataset):
        """The paper's headline: GEER needs far fewer random walks than AMC."""
        estimator = EffectiveResistanceEstimator(dataset, rng=20)
        rng = np.random.default_rng(21)
        total_geer = total_amc = 0
        for _ in range(5):
            s, t = rng.choice(dataset.num_nodes, size=2, replace=False)
            total_geer += estimator.estimate(int(s), int(t), 0.02, method="geer").num_walks
            total_amc += estimator.estimate(
                int(s), int(t), 0.02, method="amc", max_total_steps=10_000_000
            ).num_walks
        assert total_geer < total_amc

    def test_sweep_driver_produces_consistent_rows(self, dataset):
        rows = run_dataset_sweep(
            dataset,
            query_kind="random",
            epsilons=(0.5, 0.1),
            num_queries=4,
            methods=("geer", "smm"),
            dataset_label="orkut-tiny",
            rng=22,
        )
        text = format_table(rows, title="integration sweep")
        assert "geer" in text and "orkut-tiny" in text
        for row in rows:
            assert row["avg_abs_error"] <= row["epsilon"]

    def test_fig2_driver_runs(self):
        rows = fig2_running_example(max_length=6)
        assert len(rows) == 6

    def test_error_decreases_with_epsilon_on_average(self, dataset):
        estimator = EffectiveResistanceEstimator(dataset, rng=23)
        rng = np.random.default_rng(24)
        pairs = [tuple(rng.choice(dataset.num_nodes, size=2, replace=False)) for _ in range(6)]
        from repro.baselines.ground_truth import GroundTruthOracle

        oracle = GroundTruthOracle(dataset)
        errors = {}
        for epsilon in (0.5, 0.05):
            errs = []
            for s, t in pairs:
                result = estimator.estimate(int(s), int(t), epsilon, method="geer")
                errs.append(abs(result.value - oracle.query(int(s), int(t))))
            errors[epsilon] = np.mean(errs)
        assert errors[0.05] <= errors[0.5] + 1e-6
