"""Tests for the exception hierarchy, result dataclass, logging helpers and package API."""

import logging

import pytest

import repro
from repro.core.result import EstimateResult
from repro.exceptions import (
    BudgetExceededError,
    ConvergenceError,
    GraphStructureError,
    ReproError,
)
from repro.utils.logging import enable_verbose_logging, get_logger


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(GraphStructureError, ReproError)
        assert issubclass(ConvergenceError, ReproError)
        assert issubclass(BudgetExceededError, ReproError)
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise GraphStructureError("boom")


class TestEstimateResult:
    def test_work_property(self):
        result = EstimateResult(
            value=0.5, method="geer", s=0, t=1, epsilon=0.1,
            total_steps=100, spmv_operations=40,
        )
        assert result.work == 140

    def test_float_conversion(self):
        result = EstimateResult(value=0.25, method="smm", s=0, t=1, epsilon=0.1)
        assert float(result) == 0.25

    def test_defaults(self):
        result = EstimateResult(value=1.0, method="amc", s=2, t=3, epsilon=0.2)
        assert result.num_walks == 0
        assert result.budget_exhausted is False
        assert result.details == {}


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_enable_verbose_idempotent(self):
        logger = enable_verbose_logging(logging.DEBUG)
        handlers_before = len(logger.handlers)
        enable_verbose_logging(logging.DEBUG)
        assert len(logger.handlers) == handlers_before


class TestPackageAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_quickstart_path(self):
        graph = repro.barabasi_albert_graph(60, 4, rng=1)
        estimator = repro.EffectiveResistanceEstimator(graph, rng=1)
        result = estimator.estimate(0, 30, 0.3)
        assert isinstance(result, repro.EstimateResult)
        assert abs(result.value - repro.ground_truth_resistance(graph, 0, 30)) <= 0.3
