"""Property-based tests of the ε-approximation guarantee of the paper's estimators.

For random connected non-bipartite graphs and random node pairs, GEER, AMC and
SMM must return values within ε of the exact effective resistance (the failure
probability δ = 0.01 per query makes violations across ~25 examples extremely
unlikely; a small slack is added to keep the test robust).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.ground_truth import GroundTruthOracle
from repro.core.estimator import EffectiveResistanceEstimator
from repro.core.walk_length import peng_walk_length, refined_walk_length
from repro.graph.properties import is_bipartite, is_connected
from repro.sampling.concentration import (
    empirical_bernstein_error,
    hoeffding_error,
)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


from strategies import estimation_cases, walkable_graphs


class TestEpsilonGuarantee:
    @SETTINGS
    @given(estimation_cases())
    def test_geer_within_epsilon(self, case):
        graph, s, t, epsilon, seed = case
        assert is_connected(graph) and not is_bipartite(graph)
        estimator = EffectiveResistanceEstimator(graph, rng=seed)
        truth = GroundTruthOracle(graph).query(s, t)
        result = estimator.estimate(s, t, epsilon, method="geer")
        assert abs(result.value - truth) <= epsilon + 1e-9

    @SETTINGS
    @given(estimation_cases())
    def test_amc_within_epsilon(self, case):
        graph, s, t, epsilon, seed = case
        estimator = EffectiveResistanceEstimator(graph, rng=seed)
        truth = GroundTruthOracle(graph).query(s, t)
        # the step cap keeps pathological low-gap samples fast; when it fires the
        # accuracy guarantee is void, so only uncapped runs are checked
        result = estimator.estimate(s, t, epsilon, method="amc", max_total_steps=2_000_000)
        if not result.budget_exhausted:
            assert abs(result.value - truth) <= epsilon + 1e-9

    @SETTINGS
    @given(estimation_cases())
    def test_smm_within_half_epsilon(self, case):
        graph, s, t, epsilon, seed = case
        estimator = EffectiveResistanceEstimator(graph, rng=seed)
        truth = GroundTruthOracle(graph).query(s, t)
        result = estimator.estimate(s, t, epsilon, method="smm")
        # SMM is deterministic: the truncation bound alone must hold
        assert abs(result.value - truth) <= epsilon / 2 + 1e-9


class TestWalkLengthProperties:
    @SETTINGS
    @given(
        st.floats(0.01, 0.9),
        st.floats(0.05, 0.99),
        st.integers(1, 500),
        st.integers(1, 500),
    )
    def test_refined_never_longer_than_peng(self, epsilon, lam, ds, dt):
        assert refined_walk_length(epsilon, lam, ds, dt) <= peng_walk_length(epsilon, lam)

    @SETTINGS
    @given(st.floats(0.01, 0.9), st.floats(0.05, 0.99), st.integers(1, 100))
    def test_refined_monotone_in_degree(self, epsilon, lam, degree):
        shorter = refined_walk_length(epsilon, lam, degree + 1, degree + 1)
        longer = refined_walk_length(epsilon, lam, degree, degree)
        assert shorter <= longer

    @SETTINGS
    @given(st.floats(0.9, 0.999), st.integers(1, 50))
    def test_length_positive(self, lam, degree):
        assert refined_walk_length(0.05, lam, degree, degree) >= 1


class TestConcentrationProperties:
    @SETTINGS
    @given(
        st.integers(1, 10_000),
        st.floats(0.0, 5.0),
        st.floats(0.001, 10.0),
        st.floats(0.001, 0.5),
    )
    def test_bernstein_radius_nonnegative_and_monotone(self, n, variance, psi, delta):
        radius = empirical_bernstein_error(n, variance, psi, delta)
        assert radius >= 0
        assert empirical_bernstein_error(2 * n, variance, psi, delta) <= radius + 1e-12

    @SETTINGS
    @given(st.integers(1, 10_000), st.floats(0.001, 10.0), st.floats(0.001, 0.5))
    def test_hoeffding_radius_monotone_in_samples(self, n, value_range, delta):
        assert hoeffding_error(2 * n, value_range, delta) <= hoeffding_error(
            n, value_range, delta
        )


class TestWeightedEpsilonGuarantee:
    """The ε guarantee must survive the weighted generalisation."""

    @SETTINGS
    @given(estimation_cases(weighted=True))
    def test_geer_within_epsilon_weighted(self, case):
        graph, s, t, epsilon, seed = case
        assert graph.is_weighted
        estimator = EffectiveResistanceEstimator(graph, rng=seed)
        truth = GroundTruthOracle(graph).query(s, t)
        result = estimator.estimate(s, t, epsilon, method="geer")
        assert abs(result.value - truth) <= epsilon + 1e-9

    @SETTINGS
    @given(estimation_cases(weighted=True))
    def test_smm_within_half_epsilon_weighted(self, case):
        graph, s, t, epsilon, seed = case
        estimator = EffectiveResistanceEstimator(graph, rng=seed)
        truth = GroundTruthOracle(graph).query(s, t)
        result = estimator.estimate(s, t, epsilon, method="smm")
        assert abs(result.value - truth) <= epsilon / 2 + 1e-9

    @SETTINGS
    @given(st.floats(0.01, 0.9), st.floats(0.05, 0.99), st.floats(0.1, 500.0), st.floats(0.1, 500.0))
    def test_refined_length_accepts_float_degrees(self, epsilon, lam, ds, dt):
        length = refined_walk_length(epsilon, lam, ds, dt)
        assert length >= 1
        assert length <= peng_walk_length(epsilon, lam) or min(ds, dt) < 1.0
