"""Property-based tests (hypothesis) of effective-resistance invariants.

Effective resistance obeys a rich set of exact identities; the estimators and
the linear-algebra substrate must reproduce them on arbitrary connected graphs:

* symmetry and non-negativity, zero iff the endpoints coincide;
* the triangle inequality (ER is a metric);
* Rayleigh monotonicity (adding an edge never increases any resistance);
* Foster's theorem (edge resistances sum to ``n - 1``);
* series/parallel closed forms on paths, cycles and complete graphs;
* ``1/d``-style bounds for adjacent pairs;
* agreement between the pseudo-inverse, the CG solver and SMM run to convergence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactEffectiveResistance
from repro.baselines.ground_truth import GroundTruthOracle
from repro.core.smm import smm_estimate
from repro.graph.builders import from_edges
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
)
from repro.graph.properties import is_connected
from repro.linalg.solvers import LaplacianSolver

from strategies import connected_graphs, graph_with_pair

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestMetricProperties:
    @SETTINGS
    @given(graph_with_pair())
    def test_symmetry_and_nonnegativity(self, data):
        graph, s, t = data
        oracle = ExactEffectiveResistance(graph)
        r_st = oracle.query(s, t)
        r_ts = oracle.query(t, s)
        assert r_st == pytest.approx(r_ts, abs=1e-9)
        assert r_st >= -1e-12
        if s == t:
            assert r_st == pytest.approx(0.0, abs=1e-12)
        else:
            assert r_st > 0

    @SETTINGS
    @given(connected_graphs(), st.data())
    def test_triangle_inequality(self, graph, data):
        oracle = ExactEffectiveResistance(graph)
        n = graph.num_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert oracle.query(a, c) <= oracle.query(a, b) + oracle.query(b, c) + 1e-9

    @SETTINGS
    @given(connected_graphs())
    def test_upper_bounded_by_shortest_path(self, graph):
        import networkx as nx

        from repro.graph.builders import to_networkx

        oracle = ExactEffectiveResistance(graph)
        nx_graph = to_networkx(graph)
        lengths = dict(nx.shortest_path_length(nx_graph))
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, t = rng.integers(0, graph.num_nodes, size=2)
            assert oracle.query(int(s), int(t)) <= lengths[int(s)][int(t)] + 1e-9


class TestStructuralTheorems:
    @SETTINGS
    @given(connected_graphs())
    def test_fosters_theorem(self, graph):
        oracle = ExactEffectiveResistance(graph)
        total = sum(oracle.query(u, v) for u, v in graph.edges())
        assert total == pytest.approx(graph.num_nodes - 1, abs=1e-7)

    @SETTINGS
    @given(graph_with_pair(), st.data())
    def test_rayleigh_monotonicity(self, data, extra):
        graph, s, t = data
        oracle = ExactEffectiveResistance(graph)
        before = oracle.query(s, t)
        # add a random missing edge (if any exist)
        n = graph.num_nodes
        missing = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not graph.has_edge(u, v)
        ]
        if not missing:
            return
        index = extra.draw(st.integers(0, len(missing) - 1))
        denser = graph.add_edges([missing[index]])
        after = ExactEffectiveResistance(denser).query(s, t)
        assert after <= before + 1e-9

    @SETTINGS
    @given(graph_with_pair())
    def test_adjacent_pair_bounds(self, data):
        graph, s, t = data
        if s == t or not graph.has_edge(s, t):
            return
        oracle = ExactEffectiveResistance(graph)
        value = oracle.query(s, t)
        # for an edge: 1/(2m) <= ... actually parallel-cut bound and <= 1
        assert value <= 1.0 + 1e-9
        assert value >= 1.0 / (2.0 * graph.num_edges) - 1e-12

    @SETTINGS
    @given(graph_with_pair())
    def test_general_pair_lower_bound(self, data):
        """r(s, t) >= 1/d(s) + 1/d(t) - (2/d(s)d(t) if adjacent else 0) is loose;
        use the standard bound r(s, t) >= max(1/d(s), 1/d(t)) for non-adjacent pairs."""
        graph, s, t = data
        if s == t:
            return
        oracle = ExactEffectiveResistance(graph)
        value = oracle.query(s, t)
        if not graph.has_edge(s, t):
            assert value >= max(1.0 / graph.degree(s), 1.0 / graph.degree(t)) - 1e-9


class TestClosedForms:
    @SETTINGS
    @given(st.integers(3, 30), st.data())
    def test_path_graph(self, n, data):
        graph = path_graph(n)
        oracle = LaplacianSolver(graph)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, n - 1))
        assert oracle.effective_resistance(i, j) == pytest.approx(abs(i - j), abs=1e-7)

    @SETTINGS
    @given(st.integers(3, 25), st.data())
    def test_cycle_graph(self, n, data):
        graph = cycle_graph(n)
        oracle = LaplacianSolver(graph)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, n - 1))
        k = abs(i - j)
        k = min(k, n - k)
        assert oracle.effective_resistance(i, j) == pytest.approx(k * (n - k) / n, abs=1e-7)

    @SETTINGS
    @given(st.integers(2, 25), st.data())
    def test_complete_graph(self, n, data):
        graph = complete_graph(n)
        oracle = LaplacianSolver(graph)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, n - 1))
        expected = 0.0 if i == j else 2.0 / n
        assert oracle.effective_resistance(i, j) == pytest.approx(expected, abs=1e-8)

    def test_series_law(self):
        # two edges in series: resistances add
        graph = from_edges([(0, 1), (1, 2)])
        oracle = ExactEffectiveResistance(graph)
        assert oracle.query(0, 2) == pytest.approx(2.0)

    def test_parallel_law(self):
        # two parallel length-2 paths between 0 and 3: 2 || 2 = 1
        graph = from_edges([(0, 1), (1, 3), (0, 2), (2, 3)])
        oracle = ExactEffectiveResistance(graph)
        assert oracle.query(0, 3) == pytest.approx(1.0)


class TestBackendAgreement:
    @SETTINGS
    @given(graph_with_pair())
    def test_solver_matches_pseudoinverse(self, data):
        graph, s, t = data
        exact = ExactEffectiveResistance(graph).query(s, t)
        solver = LaplacianSolver(graph).effective_resistance(s, t)
        assert solver == pytest.approx(exact, abs=1e-7)

    @SETTINGS
    @given(graph_with_pair())
    def test_smm_converges_to_exact(self, data):
        """SMM truncated at the Eq. (6) length for ε = 2e-3 lands within 1e-3 of exact.

        The number of iterations is taken from the refined bound itself (rather
        than a fixed constant) because hypothesis happily generates graphs with
        a tiny spectral gap, where a fixed truncation would not have converged.
        """
        graph, s, t = data
        if is_bipartite_safe(graph):
            return
        from repro.core.walk_length import refined_walk_length
        from repro.linalg.eigen import transition_eigenvalues

        lam = transition_eigenvalues(graph).lambda_max_abs
        if lam >= 1.0 - 1e-12:
            return  # numerically degenerate sample
        length = min(refined_walk_length(2e-3, lam, graph.degree(s), graph.degree(t)), 50_000)
        exact = ExactEffectiveResistance(graph).query(s, t)
        approx = smm_estimate(graph, s, t, length).value
        assert approx == pytest.approx(exact, abs=1e-3)


def is_bipartite_safe(graph) -> bool:
    from repro.graph.properties import is_bipartite

    return is_bipartite(graph)


class TestWeightedInvariants:
    """Exact identities on weighted graphs (the weighted refactor's contract)."""

    @SETTINGS
    @given(graph_with_pair(weighted=True))
    def test_weighted_metric_properties(self, data):
        graph, s, t = data
        assert graph.is_weighted
        oracle = ExactEffectiveResistance(graph)
        r_st = oracle.query(s, t)
        assert r_st == pytest.approx(oracle.query(t, s), abs=1e-9)
        if s == t:
            assert r_st == pytest.approx(0.0, abs=1e-12)
        else:
            assert r_st > 0

    @SETTINGS
    @given(connected_graphs(weighted=True))
    def test_weighted_foster_theorem(self, graph):
        """Σ_e w(e) · r(e) = n - 1 (weighted Foster)."""
        oracle = ExactEffectiveResistance(graph)
        total = sum(
            graph.edge_weight(int(u), int(v)) * oracle.query(int(u), int(v))
            for u, v in graph.edge_array()
        )
        assert total == pytest.approx(graph.num_nodes - 1, rel=1e-6)

    @SETTINGS
    @given(connected_graphs(weighted=True), st.data())
    def test_rayleigh_monotone_in_weight(self, graph, data):
        """Increasing one edge's weight never increases any resistance."""
        edges = graph.edge_array()
        index = data.draw(st.integers(0, len(edges) - 1))
        s = data.draw(st.integers(0, graph.num_nodes - 1))
        t = data.draw(st.integers(0, graph.num_nodes - 1))
        boosted_weights = graph.edge_weight_array().copy()
        boosted_weights[index] *= 4.0
        boosted = graph.unweighted().with_weights(boosted_weights)
        before = ExactEffectiveResistance(graph).query(s, t)
        after = ExactEffectiveResistance(boosted).query(s, t)
        assert after <= before + 1e-9

    def test_weighted_series_law(self):
        # conductances 2 and 0.5 in series: r = 1/2 + 1/0.5 = 2.5
        graph = from_edges([(0, 1, 2.0), (1, 2, 0.5)])
        oracle = ExactEffectiveResistance(graph)
        assert oracle.query(0, 2) == pytest.approx(2.5)

    def test_weighted_parallel_law(self):
        # parallel paths with conductances 2 and 0.5 -> series resistances
        # 1 and 4 in parallel: r = 1 / (1/1 + 1/4) = 0.8
        graph = from_edges([(0, 1, 2.0), (1, 3, 2.0), (0, 2, 0.5), (2, 3, 0.5)])
        oracle = ExactEffectiveResistance(graph)
        assert oracle.query(0, 3) == pytest.approx(0.8)

    def test_uniform_weights_rescale_resistances(self, complete8):
        """Scaling every weight by c scales every resistance by 1/c."""
        scaled = complete8.with_weights(np.full(complete8.num_edges, 4.0))
        base = ExactEffectiveResistance(complete8)
        oracle = ExactEffectiveResistance(scaled)
        assert oracle.query(0, 5) == pytest.approx(base.query(0, 5) / 4.0)

    def test_weighted_triangle_closed_form(self, weighted_triangle):
        # r(0,1) = 1 / (w01 + 1 / (1/w02 + 1/w12))
        oracle = ExactEffectiveResistance(weighted_triangle)
        expected = 1.0 / (2.0 + 1.0 / (1.0 / 1.5 + 1.0 / 0.5))
        assert oracle.query(0, 1) == pytest.approx(expected)
