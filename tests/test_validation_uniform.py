"""Uniform ε / node-pair validation across every query entry point.

Table-driven: every entry point — ``QueryEngine.query`` / ``query_many``,
``EffectiveResistanceEstimator.estimate_many`` and the three
``ResistanceService`` paths — must raise :class:`ValueError` for the same bad
inputs (non-positive ε, NaN/inf ε, out-of-range or non-integer node ids),
before any sampling happens.
"""

import math

import numpy as np
import pytest

from repro.core.estimator import EffectiveResistanceEstimator
from repro.core.engine import QueryEngine
from repro.graph import barabasi_albert_graph
from repro.service import ResistanceService

N = 40


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(N, 3, rng=5)


@pytest.fixture(scope="module")
def engine(graph):
    return QueryEngine(graph, rng=1)


@pytest.fixture(scope="module")
def estimator(graph):
    return EffectiveResistanceEstimator(graph, rng=1)


@pytest.fixture(scope="module")
def service(graph):
    return ResistanceService(graph, rng=1)


ENTRY_POINTS = {
    "engine.query": lambda engine, estimator, service, s, t, eps: engine.query(
        s, t, eps, method="smm"
    ),
    "engine.query_many": lambda engine, estimator, service, s, t, eps: (
        engine.query_many([(s, t)], eps, method="smm")
    ),
    "estimator.estimate_many": lambda engine, estimator, service, s, t, eps: (
        estimator.estimate_many([(s, t)], eps, method="smm")
    ),
    "service.query": lambda engine, estimator, service, s, t, eps: service.query(
        s, t, eps
    ),
    "service.query_many": lambda engine, estimator, service, s, t, eps: (
        service.query_many([(s, t)], eps)
    ),
    "service.submit": lambda engine, estimator, service, s, t, eps: service.submit(
        s, t, eps
    ),
}

BAD_CASES = [
    pytest.param(0, 1, 0.0, id="epsilon-zero"),
    pytest.param(0, 1, -0.5, id="epsilon-negative"),
    pytest.param(0, 1, float("nan"), id="epsilon-nan"),
    pytest.param(0, 1, float("inf"), id="epsilon-inf"),
    pytest.param(0, N, 0.5, id="t-out-of-range"),
    pytest.param(-1, 1, 0.5, id="s-negative"),
    pytest.param(0.0, 1, 0.5, id="s-float"),
    pytest.param(0, "1", 0.5, id="t-string"),
    pytest.param(np.float64(0.0), 1, 0.5, id="s-numpy-float"),
    pytest.param(True, 1, 0.5, id="s-bool"),
]


@pytest.mark.parametrize("entry_point", sorted(ENTRY_POINTS))
@pytest.mark.parametrize("s,t,eps", BAD_CASES)
def test_bad_inputs_raise_value_error(entry_point, s, t, eps, engine, estimator, service):
    with pytest.raises(ValueError):
        ENTRY_POINTS[entry_point](engine, estimator, service, s, t, eps)


@pytest.mark.parametrize("entry_point", sorted(ENTRY_POINTS))
def test_good_inputs_pass_validation(entry_point, engine, estimator, service):
    result = ENTRY_POINTS[entry_point](engine, estimator, service, 0, 1, 0.5)
    assert result is not None


def test_empty_batch_still_validates_epsilon(engine, estimator, service):
    """ε validation must not be skipped just because the pair list is empty."""
    for call in (
        lambda: engine.query_many([], float("nan"), method="smm"),
        lambda: estimator.estimate_many([], float("nan"), method="smm"),
        lambda: service.query_many([], float("nan")),
    ):
        with pytest.raises(ValueError):
            call()


def test_error_messages_name_the_argument(engine):
    with pytest.raises(ValueError, match="epsilon"):
        engine.query(0, 1, -1.0)
    with pytest.raises(ValueError, match="s"):
        engine.query(-3, 1, 0.5)
    with pytest.raises(ValueError, match="t"):
        engine.query(0, N + 7, 0.5)
