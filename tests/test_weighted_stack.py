"""End-to-end weighted-graph coverage of the upper layers.

The graph/linalg/sampling layers have dedicated weighted unit tests; this file
checks that weights survive the whole stack: the query engine and batch
planner, parallel execution, the serving layer (artifacts + sketch) and the
CLI on a weighted edge list.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactEffectiveResistance
from repro.core.engine import QueryEngine
from repro.core.registry import QueryContext
from repro.graph.builders import with_random_weights
from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import write_edge_list
from repro.service.artifacts import (
    StaleArtifactError,
    graph_fingerprint,
    load_bundle,
    save_artifacts,
)
from repro.service.sketch import LandmarkSketchStore


@pytest.fixture(scope="module")
def weighted_graph():
    return with_random_weights(barabasi_albert_graph(120, 4, rng=30), rng=31)


@pytest.fixture(scope="module")
def weighted_oracle(weighted_graph):
    return ExactEffectiveResistance(weighted_graph)


class TestEngineAndBatch:
    def test_query_accuracy_on_weighted_graph(self, weighted_graph, weighted_oracle):
        engine = QueryEngine(weighted_graph, rng=5)
        for method in ("geer", "amc", "smm"):
            result = engine.query(3, 40, 0.25, method=method)
            assert abs(result.value - weighted_oracle.query(3, 40)) <= 0.25 + 1e-9

    def test_batch_matches_sequential_loop_bitwise(self, weighted_graph):
        pairs = [(0, 10), (3, 40), (7, 99), (0, 10)]
        looped = QueryEngine(weighted_graph, rng=77)
        planned = QueryEngine(weighted_graph, rng=77)
        expected = [looped.query(s, t, 0.3, method="geer").value for s, t in pairs]
        batch = planned.query_many(pairs, 0.3, method="geer")
        assert np.array_equal(np.array(expected), batch.values)

    def test_bucketing_uses_weighted_degrees(self, weighted_graph):
        engine = QueryEngine(weighted_graph, rng=1)
        plan = engine.plan([(0, 10), (3, 40)], 0.3, method="geer")
        for bucket in plan.buckets:
            d_lo, d_hi = bucket.key
            assert isinstance(d_lo, float) and isinstance(d_hi, float)
            # weighted degrees are non-integer with probability 1
            assert d_lo != int(d_lo) or d_hi != int(d_hi)

    def test_parallel_workers_deterministic_on_weighted(self, weighted_graph):
        pairs = [(0, 10), (3, 40), (7, 99), (11, 64)]
        one = QueryEngine(weighted_graph, rng=9).query_many(
            pairs, 0.3, method="amc", workers=2, executor="thread"
        )
        two = QueryEngine(weighted_graph, rng=9).query_many(
            pairs, 0.3, method="amc", workers=4, executor="thread"
        )
        assert np.array_equal(one.values, two.values)

    def test_vectorized_smm_matches_scalar_on_weighted(self, weighted_graph):
        pairs = [(0, 10), (3, 40), (7, 99)]
        engine = QueryEngine(weighted_graph, rng=2)
        batch = engine.query_many(pairs, 0.3, method="smm")
        scalar = [engine.query(s, t, 0.3, method="smm").value for s, t in pairs]
        assert np.allclose(batch.values, scalar, rtol=1e-12, atol=1e-12)


class TestServiceLayer:
    def test_fingerprint_distinguishes_weights(self, weighted_graph):
        unweighted = weighted_graph.unweighted()
        assert graph_fingerprint(weighted_graph) != graph_fingerprint(unweighted)
        # rescaled weights change the fingerprint too
        rescaled = unweighted.with_weights(weighted_graph.edge_weight_array() * 2.0)
        assert graph_fingerprint(rescaled) != graph_fingerprint(weighted_graph)

    def test_artifact_round_trip_on_weighted_graph(self, weighted_graph, tmp_path):
        context = QueryContext(weighted_graph, rng=3)
        sketch = LandmarkSketchStore.build(weighted_graph, num_landmarks=4)
        save_artifacts(context, tmp_path, sketch=sketch)
        restored_context, restored_sketch = load_bundle(weighted_graph, tmp_path, rng=3)
        assert restored_context.lambda_max_abs == context.lambda_max_abs
        assert np.array_equal(restored_sketch.resistances, sketch.resistances)

    def test_artifacts_for_unweighted_twin_are_stale(self, weighted_graph, tmp_path):
        context = QueryContext(weighted_graph, rng=3)
        save_artifacts(context, tmp_path)
        with pytest.raises(StaleArtifactError):
            load_bundle(weighted_graph.unweighted(), tmp_path)

    def test_sketch_bounds_valid_on_weighted_graph(
        self, weighted_graph, weighted_oracle
    ):
        store = LandmarkSketchStore.build(weighted_graph, num_landmarks=6)
        rng = np.random.default_rng(8)
        for _ in range(25):
            s, t = map(int, rng.integers(0, weighted_graph.num_nodes, size=2))
            answer = store.bounds(s, t)
            exact = weighted_oracle.query(s, t)
            assert answer.lower - 1e-8 <= exact <= answer.upper + 1e-8

    def test_sketch_landmark_queries_exact_on_weighted(
        self, weighted_graph, weighted_oracle
    ):
        store = LandmarkSketchStore.build(weighted_graph, num_landmarks=4)
        landmark = int(store.landmarks[1])
        answer = store.bounds(landmark, 17)
        assert answer.half_width <= 1e-8
        assert answer.midpoint == pytest.approx(
            weighted_oracle.query(landmark, 17), abs=1e-7
        )


class TestWeightedCli:
    def test_query_on_weighted_edge_list(self, tmp_path, capsys):
        from repro.cli import main

        graph = with_random_weights(barabasi_albert_graph(40, 3, rng=12), rng=13)
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path)
        code = main(
            ["query", "--edge-list", str(path), "--method", "smm", "--exact", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "weighted (W=" in out
        assert "abs error" in out
