"""Unit tests for RNG helpers."""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.utils.rng import as_generator, derive_seed, random_choice_csr, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(5).integers(0, 1000, size=10)
        b = as_generator(5).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawn:
    def test_spawn_count(self):
        children = spawn_generators(3, 4)
        assert len(children) == 4

    def test_spawn_independent_streams(self):
        a, b = spawn_generators(3, 2)
        assert not np.array_equal(a.integers(0, 100, 20), b.integers(0, 100, 20))

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_derive_seed_deterministic(self):
        assert derive_seed(4, "x", 1) == derive_seed(4, "x", 1)


class TestRandomChoiceCSR:
    def test_samples_are_neighbors(self):
        graph = from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        gen = np.random.default_rng(0)
        nodes = np.zeros(500, dtype=np.int64)
        samples = random_choice_csr(gen, graph.indptr, graph.indices, nodes)
        assert set(np.unique(samples)) <= {1, 2, 3}

    def test_roughly_uniform(self):
        graph = from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        gen = np.random.default_rng(0)
        nodes = np.zeros(6000, dtype=np.int64)
        samples = random_choice_csr(gen, graph.indptr, graph.indices, nodes)
        counts = np.bincount(samples, minlength=4)[1:]
        assert counts.min() > 1700  # each neighbour ~2000 expected

    def test_isolated_node_rejected(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_choice_csr(gen, graph.indptr, graph.indices, np.array([2]))
