"""Unit tests for timing helpers."""

import time

import pytest

from repro.utils.timing import TimeBudget, Timer, time_call, timed


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009
        assert timer.elapsed_ms >= 9

    def test_multiple_sections_accumulate(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_timed_contextmanager(self):
        with timed() as timer:
            time.sleep(0.002)
        assert timer.elapsed >= 0.001

    def test_time_call(self):
        value, elapsed = time_call(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0.0


class TestTimeBudget:
    def test_not_exceeded_by_default(self):
        assert not TimeBudget().exceeded()

    def test_exceeded(self):
        budget = TimeBudget(seconds=0.001)
        time.sleep(0.01)
        assert budget.exceeded()
        assert budget.remaining < 0

    def test_restart(self):
        budget = TimeBudget(seconds=0.05)
        time.sleep(0.01)
        budget.restart()
        assert budget.elapsed < 0.01
