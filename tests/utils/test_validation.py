"""Unit tests for argument validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_integer,
    check_node,
    check_node_pair,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_valid(self):
        assert check_positive(0.5, "x") == 0.5

    def test_zero_rejected_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_zero_allowed_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_positive(math.nan, "x")

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")

    def test_non_number_rejected(self):
        with pytest.raises(ValueError):
            check_positive("0.2", "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="epsilon"):
            check_positive(-1, "epsilon")


class TestCheckProbability:
    def test_valid(self):
        assert check_probability(0.01, "delta") == 0.01

    def test_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability(1.0, "delta")

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "delta")


class TestCheckInteger:
    def test_valid(self):
        assert check_integer(3, "tau") == 3

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer(0, "tau", minimum=1)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            check_integer(True, "tau")

    def test_float_rejected(self):
        with pytest.raises(ValueError):
            check_integer(2.5, "tau")


class TestCheckNode:
    def test_valid(self):
        assert check_node(3, 10) == 3

    def test_numpy_ints_accepted(self):
        import numpy as np

        assert check_node(np.int64(4), 10) == 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_node(10, 10)
        with pytest.raises(ValueError):
            check_node(-1, 10)

    def test_pair(self):
        assert check_node_pair(0, 9, 10) == (0, 9)

    def test_pair_invalid(self):
        with pytest.raises(ValueError):
            check_node_pair(0, 10, 10)
